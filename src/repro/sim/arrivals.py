"""Arrival processes for the generic stream: Poisson and bursty variants.

The paper's model assumes Poisson generic arrivals.  Real cloud traffic
is bursty — arrivals cluster.  These processes let the simulator
quantify what burstiness does to a split that was optimized under the
Poisson assumption (the arrival-side twin of the service-law robustness
study in :mod:`repro.sim.requirements`):

:class:`PoissonArrivals`
    The paper's assumption: i.i.d. exponential inter-arrival times.

:class:`MMPPArrivals`
    A two-state Markov-modulated Poisson process: the arrival rate
    alternates between a *calm* and a *burst* level, with exponential
    sojourns in each state.  The long-run average rate is pinned to the
    requested ``rate``, so utilizations stay comparable with the
    Poisson baseline while the index of dispersion grows with the
    burst/calm ratio.

:class:`HyperexponentialArrivals`
    A renewal process with two-branch hyperexponential inter-arrival
    times at a target SCV > 1 — bursty but memoryless between
    arrivals, isolating the variability effect from the correlation
    effect MMPP adds.

:class:`TracedPoissonArrivals`
    A Poisson process whose rate follows a piecewise-constant
    :class:`~repro.workloads.traces.RateTrace` — the demand-drift
    driver of the online runtime's closed-loop tests.  Unlike the
    other processes it is *deliberately* non-stationary; its
    :attr:`rate` reports the initial segment's rate.

Beyond the arrival processes, this module also models the *clients*
behind the stream.  A :class:`ClientWorkload` stamps every fresh
arrival with a priority class (an :class:`Offer`) and a
:class:`RetryPolicy` governs what rejected, shed, or timed-out offers
do next: re-offer after jittered exponential backoff, up to a per-class
retry budget.  Timed-out offers are the dangerous ones — the duplicate
re-enters the system while the original still consumes service, which
is the work amplification that makes overload *metastable* (the storm
outlives the burst that started it).  The overload chaos suite
reproduces both the storm and its cure from these knobs.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from ..core.exceptions import ParameterError

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPArrivals",
    "HyperexponentialArrivals",
    "TracedPoissonArrivals",
    "Offer",
    "RetryPolicy",
    "ClientWorkload",
]


@dataclass(frozen=True, slots=True)
class Offer:
    """One client offer of work: a priority class and a retry attempt.

    ``attempt`` 0 is the fresh arrival; each re-offer increments it.
    The admission controller and the journal both speak in offers, so a
    crash replay reconstructs the exact same decisions.
    """

    cls: int = 0
    attempt: int = 0


@dataclass(frozen=True)
class RetryPolicy:
    """Client retry behavior for rejected, shed, or timed-out offers.

    Parameters
    ----------
    budget:
        Default per-class retry budget (maximum re-offers per original
        task); 0 disables retries.
    budgets:
        Optional per-class override tuple; empty broadcasts ``budget``.
    timeout:
        Client patience: an *admitted* task whose sojourn exceeds this
        is re-offered (duplicated!) while the original keeps consuming
        service.  ``inf`` (default) disables timeout retries — only
        rejected/shed offers then retry, which is self-limiting.
    base_backoff:
        First retry's mean backoff delay.
    backoff_factor:
        Exponential growth factor per attempt.
    max_backoff:
        Backoff ceiling.
    jitter:
        Uniform jitter fraction in [0, 1): the delay is scaled by
        ``1 + jitter·(2u − 1)`` for a uniform draw ``u``.
    """

    budget: int = 3
    budgets: tuple[int, ...] = ()
    timeout: float = math.inf
    base_backoff: float = 1.0
    backoff_factor: float = 2.0
    max_backoff: float = 60.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ParameterError(f"budget must be >= 0, got {self.budget}")
        if any(b < 0 for b in self.budgets):
            raise ParameterError(f"budgets must be >= 0, got {self.budgets}")
        if not self.timeout > 0.0 or math.isnan(self.timeout):
            raise ParameterError(f"timeout must be > 0, got {self.timeout}")
        for name in ("base_backoff", "max_backoff"):
            value = getattr(self, name)
            if not (math.isfinite(value) and value > 0.0):
                raise ParameterError(f"{name} must be finite and > 0, got {value}")
        if not (math.isfinite(self.backoff_factor) and self.backoff_factor >= 1.0):
            raise ParameterError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ParameterError(f"jitter must be in [0, 1), got {self.jitter}")

    def budget_for(self, cls: int) -> int:
        """Retry budget of priority class ``cls``."""
        if self.budgets and 0 <= cls < len(self.budgets):
            return self.budgets[cls]
        return self.budget

    def backoff_delay(self, attempt: int, u: float) -> float:
        """Jittered exponential backoff before re-offer ``attempt``.

        ``u`` is a uniform(0, 1) draw from the engine's dedicated
        ``"retries"`` stream, keeping the storm reproducible.
        """
        base = min(
            self.max_backoff,
            self.base_backoff * self.backoff_factor ** max(0, attempt - 1),
        )
        return base * (1.0 + self.jitter * (2.0 * u - 1.0))


@dataclass(frozen=True)
class ClientWorkload:
    """Priority-class mix plus retry behavior of the client population.

    ``class_shares`` are the (normalized) probabilities of each priority
    class for fresh arrivals — class 0 is the highest priority.  The
    engine stamps every fresh arrival via :meth:`draw_class` from its
    dedicated ``"classes"`` stream.
    """

    class_shares: tuple[float, ...] = (1.0,)
    retry: RetryPolicy = RetryPolicy()

    def __post_init__(self) -> None:
        shares = tuple(float(s) for s in self.class_shares)
        if not shares:
            raise ParameterError("class_shares must not be empty")
        if any(not math.isfinite(s) or s < 0.0 for s in shares) or sum(shares) <= 0.0:
            raise ParameterError(
                f"class_shares must be non-negative with a positive sum, "
                f"got {self.class_shares!r}"
            )
        object.__setattr__(self, "class_shares", shares)

    @property
    def n_classes(self) -> int:
        return len(self.class_shares)

    def draw_class(self, u: float) -> int:
        """Map a uniform(0, 1) draw to a priority class."""
        total = sum(self.class_shares)
        acc = 0.0
        for cls, share in enumerate(self.class_shares):
            acc += share / total
            if u < acc:
                return cls
        return len(self.class_shares) - 1


class ArrivalProcess(abc.ABC):
    """A stationary arrival process with a known long-run rate.

    Stateful: the engine owns one instance per run and draws
    inter-arrival times sequentially through
    :meth:`next_interarrival`.  Implementations must be deterministic
    given the generator passed in.
    """

    def __init__(self, rate: float) -> None:
        if not (math.isfinite(rate) and rate > 0.0):
            raise ParameterError(f"rate must be finite and > 0, got {rate!r}")
        self._rate = float(rate)

    @property
    def rate(self) -> float:
        """Long-run average arrival rate."""
        return self._rate

    @abc.abstractmethod
    def next_interarrival(self, rng: np.random.Generator) -> float:
        """Time until the next arrival."""

    def reset(self) -> None:
        """Reset internal state (called once per run); default no-op."""


class PoissonArrivals(ArrivalProcess):
    """The paper's Poisson stream (exponential inter-arrivals)."""

    def next_interarrival(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self._rate))


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process at a pinned mean rate.

    Parameters
    ----------
    rate:
        Long-run average arrival rate.
    burstiness:
        Ratio of the burst-state rate to the calm-state rate (> 1).
    mean_sojourn:
        Mean time spent in each modulation state before switching
        (equal for both states, so the stationary split is 50/50 and
        the two state rates are ``2 rate / (1 + b)`` and
        ``2 rate b / (1 + b)``).
    """

    def __init__(
        self, rate: float, burstiness: float = 5.0, mean_sojourn: float = 10.0
    ) -> None:
        super().__init__(rate)
        if not (math.isfinite(burstiness) and burstiness > 1.0):
            raise ParameterError(
                f"burstiness must be > 1, got {burstiness!r}"
            )
        if not (math.isfinite(mean_sojourn) and mean_sojourn > 0.0):
            raise ParameterError(
                f"mean_sojourn must be > 0, got {mean_sojourn!r}"
            )
        self._calm_rate = 2.0 * rate / (1.0 + burstiness)
        self._burst_rate = self._calm_rate * burstiness
        self._sojourn = float(mean_sojourn)
        self._in_burst = False
        #: Time left in the current modulation state.
        self._state_left = 0.0

    @property
    def state_rates(self) -> tuple[float, float]:
        """``(calm_rate, burst_rate)`` of the two modulation states."""
        return (self._calm_rate, self._burst_rate)

    def reset(self) -> None:
        self._in_burst = False
        self._state_left = 0.0

    def next_interarrival(self, rng: np.random.Generator) -> float:
        """Sample across (possibly several) modulation-state switches.

        Standard competing-exponentials walk: within a state, the next
        arrival is exponential at the state rate; if the state expires
        first, time accrues and the process flips state.
        """
        elapsed = 0.0
        for _ in range(10_000):
            if self._state_left <= 0.0:
                self._state_left = float(rng.exponential(self._sojourn))
            lam = self._burst_rate if self._in_burst else self._calm_rate
            gap = float(rng.exponential(1.0 / lam))
            if gap <= self._state_left:
                self._state_left -= gap
                return elapsed + gap
            elapsed += self._state_left
            self._state_left = 0.0
            self._in_burst = not self._in_burst
        raise ParameterError(  # pragma: no cover - unreachable for sane params
            "MMPP failed to produce an arrival within 10000 state switches"
        )


class HyperexponentialArrivals(ArrivalProcess):
    """Renewal arrivals with hyperexponential inter-arrival times.

    Balanced-means two-branch construction at a target SCV, mirroring
    :class:`repro.sim.requirements.HyperExponentialRequirement`.
    """

    def __init__(self, rate: float, scv: float = 4.0) -> None:
        super().__init__(rate)
        if not (math.isfinite(scv) and scv > 1.0):
            raise ParameterError(f"scv must be > 1, got {scv!r}")
        self._scv = float(scv)
        mean = 1.0 / rate
        root = math.sqrt((self._scv - 1.0) / (self._scv + 1.0))
        self._p1 = 0.5 * (1.0 + root)
        self._m1 = mean / (2.0 * self._p1)
        self._m2 = mean / (2.0 * (1.0 - self._p1))

    @property
    def scv(self) -> float:
        """Squared coefficient of variation of the inter-arrival times."""
        return self._scv

    def next_interarrival(self, rng: np.random.Generator) -> float:
        mean = self._m1 if rng.random() < self._p1 else self._m2
        return float(rng.exponential(mean))


class TracedPoissonArrivals(ArrivalProcess):
    """Poisson arrivals whose rate follows a piecewise-constant trace.

    Within each trace segment the stream is exactly Poisson at the
    segment rate.  A draw that would cross a change point is truncated
    at the boundary and redrawn at the new rate — exact for Poisson
    processes by memorylessness (same competing-clocks walk the MMPP
    process uses, with a deterministic modulation schedule).

    The process tracks its own internal clock, which stays in lockstep
    with the simulation clock because the engine draws one inter-arrival
    per arrival event starting at time zero.
    """

    def __init__(self, trace) -> None:
        super().__init__(trace.initial_rate)
        self._trace = trace
        self._t = 0.0

    @property
    def trace(self):
        """The driving :class:`~repro.workloads.traces.RateTrace`."""
        return self._trace

    def reset(self) -> None:
        self._t = 0.0

    def next_interarrival(self, rng: np.random.Generator) -> float:
        elapsed = 0.0
        for _ in range(10_000):
            lam = self._trace.rate_at(self._t)
            boundary = self._trace.next_change(self._t)
            gap = float(rng.exponential(1.0 / lam))
            if self._t + gap < boundary:
                self._t += gap
                return elapsed + gap
            elapsed += boundary - self._t
            self._t = boundary
        raise ParameterError(  # pragma: no cover - unreachable for sane traces
            "rate trace failed to produce an arrival within 10000 segments"
        )
