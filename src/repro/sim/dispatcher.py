"""Generic-task dispatchers for the simulated blade-server group.

The paper's load-distribution algorithm splits the generic Poisson
stream into per-server substreams of rates ``lambda'_i``.  Two
operationally equivalent mechanisms are provided:

:class:`ProbabilisticDispatcher`
    Routes each arriving generic task to server ``i`` with probability
    ``lambda'_i / lambda'``.  Bernoulli splitting of a Poisson process
    yields independent Poisson substreams of exactly the intended
    rates, so this realizes the paper's model *exactly* in
    distribution.

:class:`DynamicDispatcher`
    A state-aware alternative (joins the server with the shortest
    expected-work queue among those with positive routing weight).
    *Not* part of the paper's model — included to let the benchmarks
    quantify how much a dynamic policy beats the optimal static split,
    a natural question the static analysis cannot answer.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from ..core.exceptions import ParameterError
from .server import SimServer

__all__ = [
    "Dispatcher",
    "ProbabilisticDispatcher",
    "DynamicDispatcher",
    "WeightedRoundRobinDispatcher",
]


class Dispatcher(Protocol):
    """Anything that can pick a destination server for a generic task."""

    def route(self, servers: Sequence[SimServer]) -> int:
        """Return the index of the server that receives the next task."""
        ...


class ProbabilisticDispatcher:
    """Static probabilistic splitter (the paper's mechanism).

    Parameters
    ----------
    fractions:
        Routing probabilities ``lambda'_i / lambda'``; must be
        non-negative and sum to 1 (within floating-point tolerance —
        they are renormalized defensively).
    rng:
        Dedicated random stream for routing decisions.
    """

    def __init__(self, fractions: Sequence[float], rng: np.random.Generator) -> None:
        p = np.asarray(fractions, dtype=float)
        if p.ndim != 1 or p.size == 0:
            raise ParameterError("fractions must be a non-empty 1-D sequence")
        if np.any(~np.isfinite(p)) or np.any(p < 0.0):
            raise ParameterError("fractions must be finite and >= 0")
        total = p.sum()
        if not np.isclose(total, 1.0, rtol=1e-9, atol=1e-12):
            raise ParameterError(f"fractions must sum to 1, got {total}")
        self._p = p / total
        self._cdf = np.cumsum(self._p)
        self._cdf[-1] = 1.0  # guard against rounding drift
        self._rng = rng

    @property
    def fractions(self) -> np.ndarray:
        """The (renormalized) routing probabilities."""
        return self._p.copy()

    def route(self, servers: Sequence[SimServer]) -> int:
        """Sample a destination by inverse-CDF lookup (O(log n))."""
        u = self._rng.random()
        return int(np.searchsorted(self._cdf, u, side="right"))


class WeightedRoundRobinDispatcher:
    """Deterministic weighted round-robin over the target fractions.

    Realizes the same long-run rates as the probabilistic splitter but
    with *deterministic* spacing (smooth weighted round-robin: each
    tick, advance every server's credit by its weight and dispatch to
    the largest credit).  The per-server substreams are then more
    regular than Poisson, which slightly *reduces* waiting relative to
    Bernoulli splitting — the benchmarkable gap between the paper's
    model and a practical deterministic router.
    """

    def __init__(self, fractions: Sequence[float]) -> None:
        w = np.asarray(fractions, dtype=float)
        if w.ndim != 1 or w.size == 0:
            raise ParameterError("fractions must be a non-empty 1-D sequence")
        if np.any(~np.isfinite(w)) or np.any(w < 0.0):
            raise ParameterError("fractions must be finite and >= 0")
        total = w.sum()
        if total <= 0.0:
            raise ParameterError("at least one fraction must be positive")
        self._weights = w / total
        self._credit = np.zeros_like(self._weights)

    def route(self, servers: Sequence[SimServer]) -> int:
        self._credit += self._weights
        dest = int(np.argmax(self._credit))
        self._credit[dest] -= 1.0
        return dest


class DynamicDispatcher:
    """Least-expected-work dispatcher over the positively weighted servers.

    Routes to the server minimizing ``in_system / (m * s)`` — the
    back-of-envelope expected wait normalized by service capacity —
    restricted to servers whose static fraction is positive (so servers
    the optimizer deliberately starved stay starved).  Ties break by
    lowest index for determinism.
    """

    def __init__(self, fractions: Sequence[float]) -> None:
        p = np.asarray(fractions, dtype=float)
        if np.any(~np.isfinite(p)) or np.any(p < 0.0):
            raise ParameterError("fractions must be finite and >= 0")
        if p.sum() <= 0.0:
            raise ParameterError("at least one fraction must be positive")
        self._eligible = p > 0.0

    def route(self, servers: Sequence[SimServer]) -> int:
        best = -1
        best_key = float("inf")
        for i, srv in enumerate(servers):
            if not self._eligible[i]:
                continue
            key = srv.in_system / (srv.size * srv.speed)
            if key < best_key:
                best_key = key
                best = i
        if best < 0:  # pragma: no cover - guarded by constructor
            raise ParameterError("no eligible server")
        return best
