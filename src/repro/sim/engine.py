"""Discrete-event simulation engine for a heterogeneous blade-server group.

Realizes the paper's model end-to-end: a group-wide Poisson stream of
generic tasks split by a dispatcher, independent per-server Poisson
streams of special tasks, exponential execution requirements shared by
both classes, ``m_i`` blades of speed ``s_i`` per server, and either the
shared-FCFS or the non-preemptive-priority discipline.

The engine is the validation substrate for the analytical model: run it
at the optimizer's rates and the measured mean generic response time
must match the closed-form ``T'`` (the integration tests assert this
within confidence intervals — a check the paper itself never performs).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.exceptions import ParameterError, SimulationError
from ..core.response import Discipline
from ..core.server import BladeServerGroup
from ..obs import get_obs
from .arrivals import ArrivalProcess, ClientWorkload, Offer, PoissonArrivals
from .dispatcher import Dispatcher, ProbabilisticDispatcher
from .events import EventQueue, EventType
from .requirements import ExponentialRequirement, RequirementDistribution
from .rng import StreamFactory, exponential
from .server import SimServer
from .stats import BatchMeans, RunningStats, TimeWeightedStats
from .task import SimTask, TaskClass

__all__ = ["SimulationConfig", "SimulationResult", "GroupSimulation", "simulate_group"]


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulation run.

    Attributes
    ----------
    total_generic_rate:
        Group-wide generic arrival rate ``lambda'``.
    fractions:
        Routing probabilities ``lambda'_i / lambda'`` (must sum to 1).
    discipline:
        Queueing discipline for special tasks.
    horizon:
        Simulated time at which the run stops.
    warmup:
        Initial transient discarded from all statistics (must be
        strictly less than ``horizon``).
    seed:
        Master seed for all random streams.
    """

    total_generic_rate: float
    fractions: tuple[float, ...]
    discipline: Discipline = Discipline.FCFS
    horizon: float = 50_000.0
    warmup: float = 5_000.0
    seed: int | None = 0

    def __post_init__(self) -> None:
        if not (math.isfinite(self.total_generic_rate) and self.total_generic_rate > 0):
            raise ParameterError(
                f"total_generic_rate must be > 0, got {self.total_generic_rate!r}"
            )
        if not (0.0 <= self.warmup < self.horizon):
            raise ParameterError(
                f"need 0 <= warmup < horizon, got warmup={self.warmup}, "
                f"horizon={self.horizon}"
            )


@dataclass(frozen=True)
class SimulationResult:
    """Measured output of one simulation run.

    All statistics cover the post-warmup window only.
    """

    #: Mean response time of generic tasks (the paper's ``T'``).
    generic_response_time: float
    #: Mean response time of special tasks.
    special_response_time: float
    #: Mean waiting time of generic tasks.
    generic_waiting_time: float
    #: Mean waiting time of special tasks.
    special_waiting_time: float
    #: Per-server measured utilization (busy-blade time / (m * window)).
    utilizations: np.ndarray
    #: Per-server time-average number in system.
    mean_in_system: np.ndarray
    #: Completed generic tasks counted in the statistics.
    generic_completed: int
    #: Completed special tasks counted in the statistics.
    special_completed: int
    #: Batch-means accumulator for generic response times (CI queries).
    generic_batches: BatchMeans = field(repr=False)
    #: Per-server completed generic-task counts (post-warmup).
    generic_completed_per_server: np.ndarray = field(default=None, repr=False)
    #: Completed post-warmup tasks, in completion order (only populated
    #: when the run was started with ``collect_tasks=True``).
    task_log: tuple = field(default=(), repr=False)
    #: Generic arrivals the dispatcher refused (returned a negative
    #: index), counted post-warmup.  Always zero for the paper's static
    #: dispatchers; the online runtime sheds load this way when the
    #: surviving capacity cannot absorb demand.
    generic_shed: int = 0
    #: Re-offered generic tasks (retrying clients), whole run.  Only
    #: populated when the run has a :class:`ClientWorkload`.
    generic_retried: int = 0
    #: Client-timeout firings on still-queued tasks, whole run.
    generic_timeouts: int = 0
    #: Offers dropped after exhausting their retry budget, whole run.
    generic_abandoned: int = 0
    #: Per-priority-class offered counts (fresh + retries), whole run.
    offered_by_class: tuple[int, ...] = ()
    #: Per-priority-class rejected/shed offer counts, whole run.
    shed_by_class: tuple[int, ...] = ()
    #: Per-priority-class completed-task counts, post-warmup.
    completed_by_class: tuple[int, ...] = ()


class GroupSimulation:
    """Event-scheduling simulation of one blade-server group.

    Parameters
    ----------
    group:
        The blade-server group (sizes, speeds, special rates, ``rbar``).
    config:
        Run parameters (rates, discipline, horizon, warmup, seed).
    dispatcher:
        Optional dispatcher override; defaults to the paper's
        probabilistic splitter with ``config.fractions``.
    requirement:
        Optional execution-requirement distribution; defaults to the
        paper's exponential with mean ``group.rbar``.  Supplying a
        non-exponential law (see :mod:`repro.sim.requirements`) turns
        the run into a robustness experiment — the analytical M/M/m
        predictions then no longer apply exactly.  The distribution's
        mean must equal ``group.rbar`` so utilizations stay comparable.
    collect_tasks:
        When true, every task completed inside the measurement window
        is retained in :attr:`SimulationResult.task_log` (memory grows
        linearly with the horizon — meant for distribution studies,
        not long production runs).
    classifier:
        Optional callable invoked on every newly created task (e.g. to
        stamp a multi-level :attr:`SimTask.priority`).  Runs before the
        task is offered to its server.
    arrivals:
        Optional generic-stream arrival process (see
        :mod:`repro.sim.arrivals`); defaults to the paper's Poisson
        stream at ``config.total_generic_rate``.  A non-Poisson process
        turns the run into an arrival-burstiness robustness experiment.
        The process's long-run rate must equal the configured rate.
    arrival_listener:
        Optional callable ``listener(now)`` invoked at every generic
        arrival *before* the routing decision.  The online runtime uses
        it to feed its rate estimators with the offered (pre-shedding)
        stream.
    completion_listener:
        Optional callable ``listener(task, now)`` invoked at every task
        completion (both classes, warmup included) — the runtime's
        response-time feedback channel, and the event source from which
        state-aware routing policies (power-of-d, join-idle-queue)
        maintain their per-server in-flight counts.  Delivered for every
        departure, so queue state never drifts from the data plane.
    controls:
        Scheduled control actions ``(time, action)``; each ``action``
        is called as ``action(sim, now)`` when the simulation clock
        reaches ``time``.  Used to inject server failures, recoveries,
        and other operator events into a run.
    workload:
        Optional :class:`~repro.sim.arrivals.ClientWorkload`.  When
        set, every fresh generic arrival is stamped with a priority
        class (an :class:`~repro.sim.arrivals.Offer`), rejected/shed
        offers re-enter after jittered exponential backoff up to their
        per-class retry budget, and admitted tasks that outlive
        ``retry.timeout`` are re-offered while the original keeps
        consuming service.  Offer-aware dispatchers (those exposing
        ``route_offer``) receive the offer; others fall back to the
        classic ``route(servers)`` call.
    """

    def __init__(
        self,
        group: BladeServerGroup,
        config: SimulationConfig,
        dispatcher: Dispatcher | None = None,
        requirement: "RequirementDistribution | None" = None,
        collect_tasks: bool = False,
        classifier=None,
        arrivals: "ArrivalProcess | None" = None,
        arrival_listener=None,
        completion_listener=None,
        controls=(),
        workload: "ClientWorkload | None" = None,
    ) -> None:
        if len(config.fractions) != group.n:
            raise ParameterError(
                f"fractions length {len(config.fractions)} != n = {group.n}"
            )
        self.group = group
        self.config = config
        self._streams = StreamFactory(config.seed)
        self._arrival_rng = self._streams.stream("generic-arrivals")
        self._requirement_rng = self._streams.stream("requirements")
        self._special_rngs = self._streams.spawn(group.n)
        if dispatcher is None:
            dispatcher = ProbabilisticDispatcher(
                config.fractions, self._streams.stream("routing")
            )
        self._dispatcher = dispatcher
        if requirement is None:
            requirement = ExponentialRequirement(group.rbar)
        elif abs(requirement.mean - group.rbar) > 1e-9 * group.rbar:
            raise ParameterError(
                f"requirement mean {requirement.mean} != group rbar "
                f"{group.rbar}; utilizations would be incomparable"
            )
        self._requirement = requirement
        self._collect_tasks = bool(collect_tasks)
        self._classifier = classifier
        if arrivals is None:
            arrivals = PoissonArrivals(config.total_generic_rate)
        elif abs(arrivals.rate - config.total_generic_rate) > 1e-9 * max(
            arrivals.rate, config.total_generic_rate
        ):
            raise ParameterError(
                f"arrival-process rate {arrivals.rate} != configured "
                f"total_generic_rate {config.total_generic_rate}"
            )
        self._arrivals = arrivals
        self._workload = workload
        self._backoff_scale = 1.0
        if workload is not None:
            # Dedicated streams keep class stamping and backoff jitter
            # reproducible and independent of every other draw.
            self._class_rng = self._streams.stream("classes")
            self._retry_rng = self._streams.stream("retries")
        self._arrival_listener = arrival_listener
        self._completion_listener = completion_listener
        self._controls: list = []
        self._events: EventQueue | None = None
        self._now = 0.0
        for t, action in controls:
            self.schedule_control(t, action)
        self._servers = [
            SimServer(i, srv.size, srv.speed, Discipline.coerce(config.discipline))
            for i, srv in enumerate(group.servers)
        ]
        self._task_counter = 0

    # -- clock and control plane ----------------------------------------------------

    @property
    def now(self) -> float:
        """The current simulation clock (0 before the run starts)."""
        return self._now

    def schedule_control(self, time: float, action) -> None:
        """Schedule a control action ``action(sim, now)`` at ``time``.

        Works both before :meth:`run` (the action joins the initial
        control list) and from *inside* a running simulation — e.g. a
        control action or listener arming a follow-up event.  Times at
        or past the horizon are accepted and silently never fire; times
        in the past of a running clock are rejected.
        """
        if not (math.isfinite(time) and time >= 0.0):
            raise ParameterError(f"control time must be finite and >= 0, got {time!r}")
        if not callable(action):
            raise ParameterError(f"control action must be callable, got {action!r}")
        if self._events is None:
            self._controls.append((time, action))
            return
        if time < self._now:
            raise ParameterError(
                f"control time {time!r} is in the past (now = {self._now!r})"
            )
        if time < self.config.horizon:
            self._events.schedule(time, EventType.CONTROL, payload=action)

    def swap_dispatcher(
        self,
        dispatcher: Dispatcher,
        *,
        arrival_listener=None,
        completion_listener=None,
    ) -> None:
        """Replace the dispatcher (and optionally its listeners) live.

        The event loop reads ``self._dispatcher`` and the listeners on
        every event, so the swap takes effect at the very next arrival.
        This is the crash-recovery boundary: a rebuilt control plane
        takes over routing while the data plane — queues, in-flight
        tasks, and every engine RNG stream — continues untouched.
        """
        self._dispatcher = dispatcher
        if arrival_listener is not None:
            self._arrival_listener = arrival_listener
        if completion_listener is not None:
            self._completion_listener = completion_listener

    def set_backoff_scale(self, scale: float) -> None:
        """Scale client retry backoffs live (the ``retry-storm`` fault).

        A scale well below 1 collapses the backoff spacing so the whole
        retry wave lands at once — the aggressive-client half of a
        metastable overload.  1.0 restores the configured policy.
        """
        if not (math.isfinite(scale) and scale > 0.0):
            raise ParameterError(f"backoff scale must be > 0, got {scale!r}")
        self._backoff_scale = float(scale)

    def capture_rng_state(self) -> dict:
        """JSON-safe snapshot of every engine random stream.

        Covers the stream factory (named streams plus spawn position)
        and the anonymous per-server special-arrival generators.
        Restoring via :meth:`restore_rng_state` makes subsequent
        arrival/service draws bit-identical to the captured run.
        """
        from .rng import generator_state

        return {
            "streams": self._streams.state_dict(),
            "special": [generator_state(g) for g in self._special_rngs],
        }

    def restore_rng_state(self, state: dict) -> None:
        """Restore a :meth:`capture_rng_state` snapshot in place."""
        from .rng import set_generator_state

        self._streams.load_state(state["streams"])
        special = state["special"]
        if len(special) != len(self._special_rngs):
            raise ParameterError(
                f"snapshot covers {len(special)} special streams, "
                f"engine has {len(self._special_rngs)}"
            )
        for gen, gen_state in zip(self._special_rngs, special):
            set_generator_state(gen, gen_state)

    # -- task creation ------------------------------------------------------------

    def _new_task(self, cls: TaskClass, server_index: int, now: float) -> SimTask:
        self._task_counter += 1
        task = SimTask(
            task_id=self._task_counter,
            task_class=cls,
            server_index=server_index,
            arrival_time=now,
            requirement=self._requirement.sample(self._requirement_rng),
        )
        if self._classifier is not None:
            self._classifier(task)
        return task

    # -- main loop ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the run and return post-warmup statistics."""
        cfg = self.config
        n = self.group.n
        events = EventQueue()
        self._events = events
        self._now = 0.0
        measuring = cfg.warmup == 0.0

        # Statistics containers.
        gen_resp = BatchMeans(n_batches=20)
        gen_wait = RunningStats()
        spec_resp = RunningStats()
        spec_wait = RunningStats()
        busy_tw = [TimeWeightedStats() for _ in range(n)]
        system_tw = [TimeWeightedStats() for _ in range(n)]
        gen_done = 0
        spec_done = 0
        gen_shed = 0
        gen_done_per_server = np.zeros(n, dtype=np.int64)
        task_log: list[SimTask] = []

        # Client-workload accounting (whole run, not just the
        # measurement window: the acceptance criterion for priority-0
        # goodput covers every offer the clients ever made).
        wl = self._workload
        n_classes = wl.n_classes if wl is not None else 0
        gen_retried = 0
        gen_timeouts = 0
        gen_abandoned = 0
        offered_by_class = [0] * n_classes
        shed_by_class = [0] * n_classes
        done_by_class = [0] * n_classes
        retry_depths: dict[int, int] = {}

        for i in range(n):
            busy_tw[i].reset(0.0, 0.0)
            system_tw[i].reset(0.0, 0.0)

        # Prime the arrival streams.
        self._arrivals.reset()
        events.schedule(
            self._arrivals.next_interarrival(self._arrival_rng),
            EventType.GENERIC_ARRIVAL,
        )
        for i, srv in enumerate(self.group.servers):
            if srv.special_rate > 0.0:
                events.schedule(
                    exponential(self._special_rngs[i], 1.0 / srv.special_rate),
                    EventType.SPECIAL_ARRIVAL,
                    payload=i,
                )
        if cfg.warmup > 0.0:
            events.schedule(cfg.warmup, EventType.END_OF_WARMUP)
        events.schedule(cfg.horizon, EventType.END_OF_RUN)
        for t, action in self._controls:
            if t < cfg.horizon:
                events.schedule(t, EventType.CONTROL, payload=action)

        def record_state(i: int, now: float) -> None:
            busy_tw[i].update(now, self._servers[i].busy)
            system_tw[i].update(now, self._servers[i].in_system)

        def start_service(task: SimTask, now: float) -> None:
            service = task.service_time(self.group.speeds[task.server_index])
            events.schedule(now + service, EventType.DEPARTURE, payload=task)

        def maybe_retry(offer: "Offer", now: float) -> bool:
            """Re-offer after jittered exponential backoff, if budget remains."""
            nonlocal gen_retried, gen_abandoned
            if offer.attempt >= wl.retry.budget_for(offer.cls):
                gen_abandoned += 1
                return False
            delay = self._backoff_scale * wl.retry.backoff_delay(
                offer.attempt + 1, self._retry_rng.random()
            )
            events.schedule(
                now + delay,
                EventType.GENERIC_ARRIVAL,
                payload=Offer(offer.cls, offer.attempt + 1),
            )
            gen_retried += 1
            depth = offer.attempt + 1
            retry_depths[depth] = retry_depths.get(depth, 0) + 1
            return True

        o = get_obs()
        obs_on = o.enabled
        ev_counts: dict[str, int] = {}
        wall_start = time.perf_counter()
        sim_span = o.tracer.span("sim.run", n=n, horizon=cfg.horizon)
        sim_span.__enter__()
        try:
            while events:
                ev = events.pop()
                now = ev.time
                self._now = now
                if obs_on:
                    kind = ev.kind.name
                    ev_counts[kind] = ev_counts.get(kind, 0) + 1

                if ev.kind is EventType.END_OF_RUN:
                    break

                if ev.kind is EventType.END_OF_WARMUP:
                    # Restart every integrator at the current state and drop
                    # all per-task statistics collected so far.
                    measuring = True
                    for i in range(n):
                        busy_tw[i].reset(now, self._servers[i].busy)
                        system_tw[i].reset(now, self._servers[i].in_system)
                    continue

                if ev.kind is EventType.CONTROL:
                    ev.payload(self, now)
                    continue

                if ev.kind is EventType.GENERIC_ARRIVAL:
                    # A fresh arrival carries no payload and schedules its
                    # successor; a retry carries its Offer and does not (the
                    # retry stream rides on top of the fresh stream).
                    offer = ev.payload
                    if offer is None:
                        events.schedule(
                            now + self._arrivals.next_interarrival(self._arrival_rng),
                            EventType.GENERIC_ARRIVAL,
                        )
                        if wl is not None:
                            offer = Offer(wl.draw_class(self._class_rng.random()), 0)
                    # The listener sees retries too: the runtime's rate
                    # estimator must observe the storm, not just the
                    # fresh stream — that is what admission reacts to.
                    if self._arrival_listener is not None:
                        self._arrival_listener(now)
                    if offer is not None:
                        offered_by_class[offer.cls] += 1
                        route_offer = getattr(self._dispatcher, "route_offer", None)
                        if route_offer is not None:
                            dest = route_offer(offer)
                        else:
                            dest = self._dispatcher.route(self._servers)
                    else:
                        dest = self._dispatcher.route(self._servers)
                    if dest < 0:
                        # Dispatcher shed the task (degraded mode): it never
                        # enters any queue and produces no statistics.
                        if measuring:
                            gen_shed += 1
                        if offer is not None:
                            shed_by_class[offer.cls] += 1
                            maybe_retry(offer, now)
                        continue
                    task = self._new_task(TaskClass.GENERIC, dest, now)
                    if offer is not None:
                        task.offer_class = offer.cls
                        task.attempt = offer.attempt
                        timeout = wl.retry.timeout
                        if math.isfinite(timeout) and offer.attempt < wl.retry.budget_for(
                            offer.cls
                        ):
                            events.schedule(
                                now + timeout, EventType.TIMEOUT_CHECK, payload=task
                            )
                    started = self._servers[dest].on_arrival(task, now)
                    if started is not None:
                        start_service(started, now)
                    record_state(dest, now)
                    continue

                if ev.kind is EventType.TIMEOUT_CHECK:
                    task = ev.payload
                    if math.isnan(task.completion_time):
                        # The client gave up: a duplicate re-enters after
                        # backoff while the original keeps consuming service.
                        # This work amplification is what makes overload
                        # metastable — the storm outlives the burst.
                        gen_timeouts += 1
                        maybe_retry(Offer(task.offer_class, task.attempt), now)
                    continue

                if ev.kind is EventType.SPECIAL_ARRIVAL:
                    i = ev.payload
                    rate = self.group.servers[i].special_rate
                    events.schedule(
                        now + exponential(self._special_rngs[i], 1.0 / rate),
                        EventType.SPECIAL_ARRIVAL,
                        payload=i,
                    )
                    task = self._new_task(TaskClass.SPECIAL, i, now)
                    started = self._servers[i].on_arrival(task, now)
                    if started is not None:
                        start_service(started, now)
                    record_state(i, now)
                    continue

                if ev.kind is EventType.DEPARTURE:
                    task = ev.payload
                    task.completion_time = now
                    i = task.server_index
                    nxt = self._servers[i].on_departure(now)
                    if nxt is not None:
                        start_service(nxt, now)
                    record_state(i, now)
                    if self._completion_listener is not None:
                        self._completion_listener(task, now)
                    # Count the completion only if the task *arrived* after
                    # warmup, so its whole sojourn lies in the window.
                    if measuring and task.arrival_time >= cfg.warmup:
                        if self._collect_tasks:
                            task_log.append(task)
                        if task.task_class is TaskClass.GENERIC:
                            gen_resp.add(task.response_time)
                            gen_wait.add(task.waiting_time)
                            gen_done += 1
                            gen_done_per_server[i] += 1
                            if task.offer_class is not None:
                                done_by_class[task.offer_class] += 1
                        else:
                            spec_resp.add(task.response_time)
                            spec_wait.add(task.waiting_time)
                            spec_done += 1
                    continue

                raise SimulationError(f"unhandled event kind {ev.kind}")  # pragma: no cover

            if obs_on:
                sim_span.note(
                    events=sum(ev_counts.values()),
                    wall_seconds=time.perf_counter() - wall_start,
                )
        finally:
            sim_span.__exit__(None, None, None)
        if obs_on:
            wall = time.perf_counter() - wall_start
            total_events = sum(ev_counts.values())
            reg = o.registry
            fam = reg.counter(
                "repro_sim_events_total",
                "Simulation events processed, by event kind",
                labels=("kind",),
            )
            for kind, count in ev_counts.items():
                fam.labels(kind=kind).inc(count)
            if retry_depths:
                depth_fam = reg.counter(
                    "repro_retry_depth",
                    "Re-offered tasks by retry attempt depth",
                    labels=("depth",),
                )
                for depth in sorted(retry_depths):
                    depth_fam.labels(depth=str(depth)).inc(retry_depths[depth])
            if wall > 0.0:
                reg.gauge(
                    "repro_sim_events_per_second",
                    "Event-loop occupancy of the last simulation run",
                ).set(total_events / wall)
                reg.gauge(
                    "repro_sim_time_dilation",
                    "Simulated time units per wall-clock second (last run)",
                ).set(self._now / wall)

        end = cfg.horizon
        utilizations = np.array(
            [busy_tw[i].mean(end) / self.group.servers[i].size for i in range(n)]
        )
        mean_in_system = np.array([system_tw[i].mean(end) for i in range(n)])
        if gen_done == 0:
            raise SimulationError(
                "no generic task completed inside the measurement window; "
                "increase the horizon"
            )
        return SimulationResult(
            generic_response_time=gen_resp.mean,
            special_response_time=spec_resp.mean if spec_done else float("nan"),
            generic_waiting_time=gen_wait.mean,
            special_waiting_time=spec_wait.mean if spec_done else float("nan"),
            utilizations=utilizations,
            mean_in_system=mean_in_system,
            generic_completed=gen_done,
            special_completed=spec_done,
            generic_batches=gen_resp,
            generic_completed_per_server=gen_done_per_server,
            task_log=tuple(task_log),
            generic_shed=gen_shed,
            generic_retried=gen_retried,
            generic_timeouts=gen_timeouts,
            generic_abandoned=gen_abandoned,
            offered_by_class=tuple(offered_by_class),
            shed_by_class=tuple(shed_by_class),
            completed_by_class=tuple(done_by_class),
        )


def simulate_group(
    group: BladeServerGroup,
    total_generic_rate: float,
    fractions,
    discipline: Discipline | str = Discipline.FCFS,
    horizon: float = 50_000.0,
    warmup: float = 5_000.0,
    seed: int | None = 0,
    requirement: RequirementDistribution | None = None,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`GroupSimulation`."""
    config = SimulationConfig(
        total_generic_rate=total_generic_rate,
        fractions=tuple(float(f) for f in fractions),
        discipline=Discipline.coerce(discipline),
        horizon=horizon,
        warmup=warmup,
        seed=seed,
    )
    return GroupSimulation(group, config, requirement=requirement).run()
