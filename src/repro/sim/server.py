"""Simulated blade server: ``m`` blades plus a multi-level priority queue.

Implements exactly the paper's service model, generalized to ``K``
priority levels (the paper's Section 4 is the two-level special case):

* ``m_i`` identical blades of speed ``s_i``; a task with requirement
  ``r`` occupies one blade for ``r / s_i`` time units.
* Infinite-capacity waiting queue.
* **FCFS discipline**: all tasks share one FIFO queue regardless of
  class or priority.
* **Priority discipline**: one FIFO queue per priority level (lower
  level number = served first); a freed blade always takes the head of
  the highest-priority non-empty queue, and service is non-preemptive
  ("the processing of a task cannot be interrupted").  Tasks default to
  the paper's scheme — special = level 0, generic = level 1 — via
  :attr:`SimTask.effective_priority`.

The server is a passive component: the engine calls :meth:`on_arrival`
and :meth:`on_departure` and schedules the departure events the server
hands back.
"""

from __future__ import annotations

from collections import deque

from ..core.exceptions import SimulationError
from ..core.response import Discipline
from .task import SimTask

__all__ = ["SimServer"]


class SimServer:
    """State of one blade server inside the simulation.

    Parameters
    ----------
    index:
        Position of the server in the group (used in task records).
    size:
        Number of blades ``m_i``.
    speed:
        Blade speed ``s_i``.
    discipline:
        Queueing discipline (FCFS or multi-level priority).
    """

    def __init__(
        self,
        index: int,
        size: int,
        speed: float,
        discipline: Discipline = Discipline.FCFS,
    ) -> None:
        self.index = index
        self.size = size
        self.speed = speed
        self.discipline = Discipline.coerce(discipline)
        self.busy = 0
        #: FCFS mode: the single shared queue.
        self._fifo: deque[SimTask] = deque()
        #: Priority mode: one FIFO per level, keyed by level number.
        self._levels: dict[int, deque[SimTask]] = {}
        #: Sorted level numbers with (possibly) non-empty queues.
        self._level_order: list[int] = []
        #: Cumulative counters (never reset; diagnostics only).
        self.arrivals = 0
        self.completions = 0

    # -- queue state -------------------------------------------------------------

    @property
    def queue_length(self) -> int:
        """Number of tasks waiting (not in service)."""
        if self.discipline is Discipline.FCFS:
            return len(self._fifo)
        return sum(len(q) for q in self._levels.values())

    @property
    def in_system(self) -> int:
        """Tasks waiting plus tasks in service."""
        return self.queue_length + self.busy

    # -- event handlers ------------------------------------------------------------

    def on_arrival(self, task: SimTask, now: float) -> SimTask | None:
        """Accept an arriving task.

        Returns the task if it enters service immediately (the engine
        must then schedule its departure), or ``None`` if it queued.
        """
        self.arrivals += 1
        if self.busy < self.size:
            self.busy += 1
            task.start_time = now
            return task
        if self.discipline is Discipline.FCFS:
            self._fifo.append(task)
        else:
            level = task.effective_priority
            q = self._levels.get(level)
            if q is None:
                q = deque()
                self._levels[level] = q
                self._level_order = sorted(self._levels)
            q.append(task)
        return None

    def on_departure(self, now: float) -> SimTask | None:
        """Complete one service.

        Frees a blade and, if the queue is non-empty, immediately
        starts the next task per the discipline.  Returns that task
        (the engine schedules its departure) or ``None`` if the blade
        went idle.
        """
        if self.busy <= 0:
            raise SimulationError(
                f"departure on server {self.index} with no busy blade"
            )
        self.completions += 1
        nxt = self._pop_next()
        if nxt is None:
            self.busy -= 1
            return None
        nxt.start_time = now
        return nxt

    def _pop_next(self) -> SimTask | None:
        if self.discipline is Discipline.FCFS:
            return self._fifo.popleft() if self._fifo else None
        for level in self._level_order:
            q = self._levels[level]
            if q:
                return q.popleft()
        return None
