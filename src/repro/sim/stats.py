"""Online statistics for simulation output analysis.

Provides the estimators the validation harness relies on:

* :class:`RunningStats` — Welford's numerically stable online
  mean/variance accumulator (single pass, no stored samples).
* :class:`TimeWeightedStats` — time-average of a piecewise-constant
  signal (queue lengths, busy-blade counts) via trapezoid-free
  rectangle integration between change points.
* :class:`BatchMeans` — the method of batch means for confidence
  intervals on a *correlated* stationary output series (per-task
  response times are heavily autocorrelated, so naive i.i.d. CIs would
  be far too tight).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as _scipy_stats

from ..core.exceptions import ParameterError, SimulationError

__all__ = ["RunningStats", "TimeWeightedStats", "BatchMeans", "ConfidenceInterval"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval ``mean ± half_width``."""

    mean: float
    half_width: float
    level: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.6g} ± {self.half_width:.3g} ({self.level:.0%})"


class RunningStats:
    """Welford online accumulator for mean and variance.

    Numerically stable for arbitrarily long streams (the textbook
    two-pass formula catastrophically cancels; Welford does not).
    """

    __slots__ = ("_n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        """Fold one observation into the accumulator."""
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one (parallel Welford)."""
        if other._n == 0:
            return
        if self._n == 0:
            self._n, self._mean, self._m2 = other._n, other._mean, other._m2
            self._min, self._max = other._min, other._max
            return
        n = self._n + other._n
        delta = other._mean - self._mean
        self._mean += delta * other._n / n
        self._m2 += other._m2 + delta * delta * self._n * other._n / n
        self._n = n
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def state_dict(self) -> dict:
        """JSON-safe snapshot of the accumulator (lossless round trip)."""
        return {
            "n": self._n,
            "mean": self._mean,
            "m2": self._m2,
            "min": self._min,
            "max": self._max,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self._n = int(state["n"])
        self._mean = float(state["mean"])
        self._m2 = float(state["m2"])
        self._min = float(state["min"])
        self._max = float(state["max"])

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise SimulationError("mean of an empty RunningStats")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (needs at least two observations)."""
        if self._n < 2:
            raise SimulationError("variance needs at least 2 observations")
        return self._m2 / (self._n - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._n == 0:
            raise SimulationError("minimum of an empty RunningStats")
        return self._min

    @property
    def maximum(self) -> float:
        if self._n == 0:
            raise SimulationError("maximum of an empty RunningStats")
        return self._max


class TimeWeightedStats:
    """Time-average of a piecewise-constant signal.

    Used for mean queue lengths and mean busy-blade counts: the signal
    holds its value between events, so the time integral is a sum of
    ``value * holding_time`` rectangles.
    """

    __slots__ = ("_last_time", "_last_value", "_area", "_start", "_started")

    def __init__(self) -> None:
        self._last_time = 0.0
        self._last_value = 0.0
        self._area = 0.0
        self._start = 0.0
        self._started = False

    def reset(self, time: float, value: float) -> None:
        """(Re)start integration at ``time`` with the current ``value``.

        Called at the end of warmup so the transient is discarded.
        """
        self._start = time
        self._last_time = time
        self._last_value = value
        self._area = 0.0
        self._started = True

    def update(self, time: float, value: float) -> None:
        """Record that the signal changed to ``value`` at ``time``."""
        if not self._started:
            self.reset(time, value)
            return
        if time < self._last_time:
            raise SimulationError(
                f"time went backwards: {time} < {self._last_time}"
            )
        self._area += self._last_value * (time - self._last_time)
        self._last_time = time
        self._last_value = value

    def mean(self, end_time: float) -> float:
        """Time-average over ``[start, end_time]``."""
        if not self._started:
            raise SimulationError("mean() before any update()")
        if end_time < self._last_time:
            raise ParameterError(
                f"end_time {end_time} precedes last update {self._last_time}"
            )
        total = end_time - self._start
        if total <= 0.0:
            raise SimulationError("zero-length observation window")
        area = self._area + self._last_value * (end_time - self._last_time)
        return area / total


class BatchMeans:
    """Confidence intervals for correlated output via batch means.

    Observations are grouped into ``n_batches`` contiguous batches;
    batch averages are approximately i.i.d. normal for large batches,
    so a Student-t interval on them is asymptotically valid despite the
    autocorrelation of the raw series.

    Observations are streamed in; the batch boundaries are rebuilt
    lazily at query time from a fixed target batch count.
    """

    def __init__(self, n_batches: int = 20) -> None:
        if n_batches < 2:
            raise ParameterError(f"need at least 2 batches, got {n_batches}")
        self._n_batches = n_batches
        self._values: list[float] = []

    def add(self, x: float) -> None:
        """Append one observation."""
        self._values.append(x)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            raise SimulationError("mean of an empty BatchMeans")
        return sum(self._values) / len(self._values)

    def interval(self, level: float = 0.95) -> ConfidenceInterval:
        """Student-t CI on the mean from the batch averages.

        Trailing observations that do not fill a whole batch are
        dropped (standard practice; keeps batches equal-sized).
        """
        if not (0.0 < level < 1.0):
            raise ParameterError(f"level must be in (0,1), got {level}")
        k = self._n_batches
        b = len(self._values) // k
        if b < 1:
            raise SimulationError(
                f"need at least {k} observations for {k} batches, "
                f"have {len(self._values)}"
            )
        batch_avgs = [
            sum(self._values[i * b : (i + 1) * b]) / b for i in range(k)
        ]
        grand = sum(batch_avgs) / k
        var = sum((a - grand) ** 2 for a in batch_avgs) / (k - 1)
        t_crit = float(_scipy_stats.t.ppf(0.5 + level / 2.0, df=k - 1))
        half = t_crit * math.sqrt(var / k)
        return ConfidenceInterval(mean=grand, half_width=half, level=level)
