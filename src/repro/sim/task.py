"""Task records flowing through the simulated blade-server group."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["TaskClass", "SimTask"]


class TaskClass(enum.Enum):
    """Workload class of a simulated task.

    ``GENERIC`` tasks arrive in one group-wide Poisson stream and are
    routed by the dispatcher; ``SPECIAL`` tasks arrive in dedicated
    per-server Poisson streams and are pinned to their server.
    """

    GENERIC = "generic"
    SPECIAL = "special"


@dataclass(slots=True)
class SimTask:
    """A single task's lifecycle through the simulation.

    Attributes
    ----------
    task_id:
        Monotonically increasing unique id (also the FIFO tiebreaker).
    task_class:
        ``GENERIC`` or ``SPECIAL``.
    server_index:
        Index of the blade server executing the task.
    arrival_time:
        Simulation time the task entered the system.
    requirement:
        Execution requirement ``r`` in giga-instructions (exponential
        with mean ``rbar``); the service time on server ``i`` is
        ``r / s_i``.
    start_time:
        Time service began (``nan`` until scheduled).
    completion_time:
        Time service finished (``nan`` until completed).
    priority:
        Priority level under the priority discipline; lower numbers are
        served first.  Defaults to the paper's two-level scheme
        (``SPECIAL`` = 0 above ``GENERIC`` = 1) via
        :meth:`effective_priority`; set explicitly for K-class
        experiments.  Ignored under FCFS.
    offer_class:
        Admission-control priority class of the client offer that
        produced this task (0 = highest), or ``None`` when the run has
        no :class:`~repro.sim.arrivals.ClientWorkload`.  Distinct from
        :attr:`priority`, which selects the queueing discipline level.
    attempt:
        Zero-based retry attempt of the offer (0 = fresh arrival).
    """

    task_id: int
    task_class: TaskClass
    server_index: int
    arrival_time: float
    requirement: float
    start_time: float = field(default=float("nan"))
    completion_time: float = field(default=float("nan"))
    priority: int | None = None
    offer_class: int | None = None
    attempt: int = 0

    @property
    def effective_priority(self) -> int:
        """Priority level, defaulting to the paper's two-class scheme."""
        if self.priority is not None:
            return self.priority
        return 0 if self.task_class is TaskClass.SPECIAL else 1

    def service_time(self, speed: float) -> float:
        """Execution time ``r / s`` on a blade of the given speed."""
        return self.requirement / speed

    @property
    def response_time(self) -> float:
        """Total time in system (``nan`` if not yet completed)."""
        return self.completion_time - self.arrival_time

    @property
    def waiting_time(self) -> float:
        """Time spent in the waiting queue (``nan`` if never started)."""
        return self.start_time - self.arrival_time
