"""Replication runner: independent runs and confidence intervals.

One simulation run gives a point estimate whose error is hard to judge;
``k`` independent replications (distinct seeds spawned from one master
seed) give i.i.d. run means and a Student-t confidence interval — the
standard "replication/deletion" method.  This is what the validation
harness and the simulation benchmarks use to decide whether the
analytic ``T'`` lies inside the simulation's error bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats

from ..core.exceptions import ParameterError
from ..core.response import Discipline
from ..core.server import BladeServerGroup
from .engine import SimulationConfig, GroupSimulation, SimulationResult
from .stats import ConfidenceInterval

__all__ = ["ReplicatedResult", "run_replications"]


@dataclass(frozen=True)
class ReplicatedResult:
    """Aggregate of ``k`` independent simulation replications."""

    #: Per-replication results, in seed order.
    replications: tuple[SimulationResult, ...]
    #: CI on the mean generic response time across replications.
    generic_response_time: ConfidenceInterval
    #: CI on the mean special response time (``nan`` CI if no specials).
    special_response_time: ConfidenceInterval
    #: Mean per-server utilizations across replications.
    utilizations: np.ndarray

    @property
    def k(self) -> int:
        """Number of replications."""
        return len(self.replications)


def _t_interval(values: Sequence[float], level: float) -> ConfidenceInterval:
    vals = [v for v in values if not math.isnan(v)]
    if not vals:
        return ConfidenceInterval(float("nan"), float("nan"), level)
    mean = sum(vals) / len(vals)
    if len(vals) == 1:
        return ConfidenceInterval(mean, float("inf"), level)
    var = sum((v - mean) ** 2 for v in vals) / (len(vals) - 1)
    t_crit = float(_scipy_stats.t.ppf(0.5 + level / 2.0, df=len(vals) - 1))
    return ConfidenceInterval(mean, t_crit * math.sqrt(var / len(vals)), level)


def run_replications(
    group: BladeServerGroup,
    total_generic_rate: float,
    fractions: Sequence[float],
    discipline: Discipline | str = Discipline.FCFS,
    *,
    replications: int = 5,
    horizon: float = 50_000.0,
    warmup: float = 5_000.0,
    seed: int = 0,
    level: float = 0.95,
) -> ReplicatedResult:
    """Run ``replications`` independent simulations and aggregate.

    Parameters
    ----------
    group, total_generic_rate, fractions, discipline:
        As for :func:`repro.sim.engine.simulate_group`.
    replications:
        Number of independent runs (>= 1); seeds are ``seed + j``.
    horizon, warmup:
        Per-run simulated time and discarded transient.
    level:
        Confidence level of the reported intervals.
    """
    if replications < 1:
        raise ParameterError(f"replications must be >= 1, got {replications}")
    disc = Discipline.coerce(discipline)
    results: list[SimulationResult] = []
    for j in range(replications):
        config = SimulationConfig(
            total_generic_rate=total_generic_rate,
            fractions=tuple(float(f) for f in fractions),
            discipline=disc,
            horizon=horizon,
            warmup=warmup,
            seed=seed + j,
        )
        results.append(GroupSimulation(group, config).run())
    return ReplicatedResult(
        replications=tuple(results),
        generic_response_time=_t_interval(
            [r.generic_response_time for r in results], level
        ),
        special_response_time=_t_interval(
            [r.special_response_time for r in results], level
        ),
        utilizations=np.mean([r.utilizations for r in results], axis=0),
    )
