"""Uniform config machinery: frozen keyword-only dataclasses + dict I/O.

Every tunable surface of the runtime — :class:`ObsConfig` here,
:class:`~repro.runtime.loop.RuntimeConfig` and
:class:`~repro.faults.supervisor.SupervisorConfig` elsewhere — follows
one convention:

* ``@dataclass(frozen=True, kw_only=True)`` — configs are immutable
  values constructed by field name only, so adding a knob can never
  silently shift a positional argument;
* :class:`ConfigBase` mixin — a lossless ``to_dict()``/``from_dict()``
  round trip (enums to their values, tuples to lists, nested configs
  to nested dicts) so configs serialize to JSON/YAML experiment files
  and rebuild bit-identically.

``from_dict`` rejects unknown keys loudly: a typo in an experiment file
must fail at load time, not silently run defaults.
"""

from __future__ import annotations

import enum
import types
import typing
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Mapping, Union

from .registry import ObsError

__all__ = ["ConfigBase", "ObsConfig"]

#: ``typing.get_origin`` results that mean "this hint is a union".
_UNION_ORIGINS = (Union, types.UnionType)


def _plain(value: Any) -> Any:
    """Recursively convert a config field value to plain JSON-able data."""
    if isinstance(value, ConfigBase):
        return value.to_dict()
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (tuple, list)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    return value


class ConfigBase:
    """Mixin giving frozen dataclass configs a dict round trip."""

    def to_dict(self) -> dict:
        """Plain-dict form: enums become values, tuples become lists,
        nested configs become nested dicts."""
        if not is_dataclass(self):  # pragma: no cover - misuse guard
            raise ObsError(f"{type(self).__name__} is not a dataclass")
        return {f.name: _plain(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ConfigBase":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys raise; nested config dicts are recursed into via
        the field's declared type; list values land on tuple-typed
        fields as tuples.  The round trip
        ``cls.from_dict(cfg.to_dict()) == cfg`` holds for every config
        in the library.
        """
        if not isinstance(data, Mapping):
            raise ObsError(
                f"{cls.__name__}.from_dict needs a mapping, got {type(data).__name__}"
            )
        hints = typing.get_type_hints(cls)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ObsError(
                f"unknown {cls.__name__} keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        kwargs = {}
        for name, value in data.items():
            hint = hints.get(name)
            origin = typing.get_origin(hint)
            # Union hints (e.g. ``Discipline | str``): consider every arm.
            arms = typing.get_args(hint) if origin in _UNION_ORIGINS else (hint,)
            for arm in arms:
                if not isinstance(arm, type) or isinstance(value, arm):
                    continue
                if issubclass(arm, ConfigBase) and isinstance(value, Mapping):
                    value = arm.from_dict(value)
                    break
                if issubclass(arm, enum.Enum):
                    try:
                        value = arm(value)
                    except ValueError:
                        continue
                    break
            if origin is tuple and isinstance(value, (list, tuple)):
                value = tuple(value)
            kwargs[name] = value
        return cls(**kwargs)


@dataclass(frozen=True, kw_only=True)
class ObsConfig(ConfigBase):
    """The single observability knob threaded through the runtime.

    Everything is off by default: the process runs against no-op
    registry/tracer singletons whose per-call cost is one attribute
    access.  ``enabled=True`` switches the global context (see
    :func:`repro.obs.configure`) to live instances.

    Attributes
    ----------
    enabled:
        Master switch.  ``False`` forces the no-op registry *and*
        tracer regardless of the flags below.
    metrics:
        Record into a live :class:`~repro.obs.registry.MetricsRegistry`
        (counters, gauges, histograms).
    trace:
        Record spans into a live :class:`~repro.obs.trace.Tracer`.
    trace_capacity:
        Ring-buffer size of the tracer: the most recent this-many
        completed spans are retained for export.
    profile:
        Arm the cProfile hook: :meth:`Observability.profile` regions
        (benchmarks, ``run_closed_loop``) actually profile instead of
        no-opping.  Expect 2–5x slowdown inside profiled regions.
    profile_top:
        Rows kept in each profile's flat dump.
    """

    enabled: bool = False
    metrics: bool = True
    trace: bool = True
    trace_capacity: int = 4096
    profile: bool = False
    profile_top: int = 25

    def __post_init__(self) -> None:
        if self.trace_capacity < 1:
            raise ObsError(
                f"trace_capacity must be >= 1, got {self.trace_capacity}"
            )
        if self.profile_top < 1:
            raise ObsError(f"profile_top must be >= 1, got {self.profile_top}")
