"""Opt-in profiling hooks: cProfile with top-N flat dumps.

Wrap any code region to attribute wall-clock to hot paths:

>>> from repro.obs import profile
>>> with profile(top_n=10) as report:
...     expensive_work()
>>> print(report.text)

The report materializes when the ``with`` block exits; before that its
fields are empty.  ``profile`` is deliberately independent of the
global observability context so benchmarks can profile a single solve
without enabling tracing — :meth:`Observability.profile` (see
:mod:`repro.obs`) is the config-gated variant the runtime uses.

cProfile costs 2–5x on pure-Python hot loops, so profiling is never on
by default; it exists to *find* the hot path, after which the metrics
registry and spans measure it cheaply.
"""

from __future__ import annotations

import cProfile
import io
import pstats

from .registry import ObsError

__all__ = ["ProfileReport", "profile", "NullProfile"]


class ProfileReport:
    """Result of one profiled region (filled when the region exits).

    Attributes
    ----------
    enabled:
        Whether profiling actually ran (``False`` for the no-op hook).
    text:
        The ``pstats`` top-N flat dump, one row per function.
    total_calls:
        Total function calls observed.
    total_seconds:
        Total time attributed by the profiler.
    """

    def __init__(self, top_n: int, sort: str) -> None:
        if top_n < 1:
            raise ObsError(f"top_n must be >= 1, got {top_n}")
        self.top_n = top_n
        self.sort = sort
        self.enabled = True
        self.text = ""
        self.total_calls = 0
        self.total_seconds = 0.0
        self._stats: pstats.Stats | None = None

    def _finish(self, profiler: cProfile.Profile) -> None:
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats(self.sort).print_stats(self.top_n)
        self._stats = stats
        self.text = buf.getvalue()
        self.total_calls = int(getattr(stats, "total_calls", 0))
        self.total_seconds = float(getattr(stats, "total_tt", 0.0))

    @property
    def stats(self) -> pstats.Stats | None:
        """The raw ``pstats.Stats`` (None until the region exits)."""
        return self._stats

    def dump(self, path: str) -> str:
        """Write the flat dump to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.text)
        return path

    def __str__(self) -> str:
        return self.text


class profile:
    """Context manager profiling its block with cProfile.

    Parameters
    ----------
    top_n:
        Rows kept in the flat dump.
    sort:
        ``pstats`` sort key (``"cumulative"``, ``"tottime"``,
        ``"calls"``, ...).
    """

    def __init__(self, top_n: int = 25, sort: str = "cumulative") -> None:
        self.report = ProfileReport(top_n, sort)
        self._profiler = cProfile.Profile()

    def __enter__(self) -> ProfileReport:
        self._profiler.enable()
        return self.report

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler.disable()
        self.report._finish(self._profiler)


class NullProfile:
    """No-op stand-in for :class:`profile` when profiling is off."""

    def __init__(self) -> None:
        self.report = ProfileReport(1, "cumulative")
        self.report.enabled = False

    def __enter__(self) -> ProfileReport:
        return self.report

    def __exit__(self, exc_type, exc, tb) -> None:
        pass
