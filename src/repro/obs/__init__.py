"""repro.obs — structured observability: metrics, tracing, profiling.

A zero-dependency (stdlib-only) subsystem giving every layer of the
library one way to answer "what did the hot path just do":

* :mod:`repro.obs.registry` — named metric families (``Counter``,
  ``Gauge``, log-bucketed ``Histogram``) with Prometheus-style labels;
* :mod:`repro.obs.trace` — nested span timing over a monotonic clock,
  exported as JSON-lines from a bounded ring buffer;
* :mod:`repro.obs.profile` — opt-in cProfile hooks with top-N dumps.

The process holds one global :class:`Observability` context.  It starts
*disabled* — registry and tracer are inert singletons, so instrumented
code costs one attribute access per site — and is switched on with

>>> from repro.obs import configure, ObsConfig
>>> obs = configure(ObsConfig(enabled=True))

or, through the runtime, by handing ``RuntimeConfig(obs=ObsConfig(
enabled=True))`` to :func:`repro.runtime.loop.run_closed_loop` — the
one knob the ISSUE's "threaded through the runtime" contract names.

Instrumented call sites follow one pattern::

    o = get_obs()
    if o.enabled:
        o.registry.counter("repro_solves_total").inc()
    with o.tracer.span("solve", n=n):     # no-op CM when disabled
        ...

Metric names, span taxonomy, and the JSONL schema are catalogued in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from .config import ConfigBase, ObsConfig
from .profile import NullProfile, ProfileReport, profile
from .registry import (
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NullMetric,
    NullRegistry,
    ObsError,
    log_bucket_edges,
)
from .trace import NULL_SPAN, NULL_TRACER, NullSpan, NullTracer, Span, Tracer

__all__ = [
    "ObsError",
    "ConfigBase",
    "ObsConfig",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullMetric",
    "NullRegistry",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "log_bucket_edges",
    "Span",
    "Tracer",
    "NullSpan",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "profile",
    "ProfileReport",
    "NullProfile",
    "Observability",
    "get_obs",
    "configure",
    "reset_obs",
]


class Observability:
    """One bundle of (config, registry, tracer) — the obs context.

    Attributes
    ----------
    config:
        The :class:`ObsConfig` this context realizes.
    registry:
        A live :class:`MetricsRegistry`, or :data:`NULL_REGISTRY`.
    tracer:
        A live :class:`Tracer`, or :data:`NULL_TRACER`.
    """

    __slots__ = ("config", "registry", "tracer")

    def __init__(self, config: ObsConfig, registry, tracer) -> None:
        self.config = config
        self.registry = registry
        self.tracer = tracer

    @property
    def enabled(self) -> bool:
        """Whether this context records anything at all."""
        return self.config.enabled

    @classmethod
    def disabled(cls) -> "Observability":
        """The inert context (no-op registry and tracer)."""
        return cls(ObsConfig(), NULL_REGISTRY, NULL_TRACER)

    @classmethod
    def from_config(cls, config: ObsConfig) -> "Observability":
        """Build a context realizing ``config``."""
        if not config.enabled:
            return cls(config, NULL_REGISTRY, NULL_TRACER)
        registry = MetricsRegistry() if config.metrics else NULL_REGISTRY
        tracer = (
            Tracer(capacity=config.trace_capacity) if config.trace else NULL_TRACER
        )
        return cls(config, registry, tracer)

    def profile(self, top_n: int | None = None, sort: str = "cumulative"):
        """Config-gated profiling region.

        Returns a live :class:`profile` context manager when this
        context is enabled with ``profile=True``, else a no-op whose
        report has ``enabled=False`` — callers wrap unconditionally::

            with get_obs().profile() as report:
                hot_loop()
            if report.enabled:
                print(report.text)
        """
        if not (self.enabled and self.config.profile):
            return NullProfile()
        return profile(
            top_n=self.config.profile_top if top_n is None else top_n, sort=sort
        )


_GLOBAL: Observability = Observability.disabled()


def get_obs() -> Observability:
    """The process-global observability context."""
    return _GLOBAL


def configure(config: ObsConfig | Observability) -> Observability:
    """Install (and return) a new global observability context.

    Accepts either an :class:`ObsConfig` (a fresh context is built from
    it) or a pre-built :class:`Observability`.  Instrumented code reads
    the global at call time, so reconfiguration takes effect for every
    subsequent operation; components that cached the old context (the
    online runtime caches at construction) keep their snapshot.
    """
    global _GLOBAL
    if isinstance(config, Observability):
        _GLOBAL = config
    elif isinstance(config, ObsConfig):
        _GLOBAL = Observability.from_config(config)
    else:
        raise ObsError(
            f"configure takes ObsConfig or Observability, got {type(config).__name__}"
        )
    return _GLOBAL


def reset_obs() -> Observability:
    """Restore the disabled global context (test isolation)."""
    return configure(Observability.disabled())
