"""Metrics registry: counters, gauges, and log-bucketed histograms.

Zero-dependency (stdlib only) so the hot paths in :mod:`repro.core` can
record into it without dragging numpy into the no-op path.  The design
follows the Prometheus client-library shape — named *families* that may
carry label dimensions, children addressed by label values — but stays
deliberately tiny:

* :class:`Counter` — monotonic ``inc``;
* :class:`Gauge` — ``set``/``inc``/``dec``;
* :class:`Histogram` — fixed bucket layout chosen at creation time
  (log-spaced by default, because solver latencies and response times
  span orders of magnitude), with underflow/overflow bins, a running
  sum, and conservative bin-edge quantiles;
* :class:`MetricsRegistry` — get-or-create families by name, with a
  ``collect()``/``to_dict()`` export any scraper or JSON artifact can
  consume.

Everything is O(1) per observation.  When observability is disabled the
process-global registry is :data:`NULL_REGISTRY`, whose metrics are a
shared inert singleton — recording into it is a no-op attribute call,
which is what keeps the disabled overhead near zero.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterator, Mapping, Sequence

__all__ = [
    "ObsError",
    "Counter",
    "Gauge",
    "Histogram",
    "log_bucket_edges",
    "MetricFamily",
    "MetricsRegistry",
    "NullMetric",
    "NullRegistry",
    "NULL_METRIC",
    "NULL_REGISTRY",
]


class ObsError(ValueError):
    """Invalid observability-layer usage (bad names, labels, buckets)."""


def log_bucket_edges(lo: float, hi: float, buckets: int) -> tuple[float, ...]:
    """``buckets + 1`` logarithmically spaced edges over ``[lo, hi]``.

    The layout is fixed at histogram creation — identical across
    processes and runs for the same parameters, so bucketed exports are
    directly comparable between benchmark baselines.
    """
    if not (0.0 < lo < hi and math.isfinite(lo) and math.isfinite(hi)):
        raise ObsError(f"need 0 < lo < hi finite, got {lo!r}, {hi!r}")
    if buckets < 1:
        raise ObsError(f"buckets must be >= 1, got {buckets}")
    ratio = hi / lo
    return tuple(lo * ratio ** (k / buckets) for k in range(buckets + 1))


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("_value",)
    kind = "counter"

    def __init__(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        """The current count."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0.0:
            raise ObsError(f"counters only go up; got inc({amount!r})")
        self._value += amount

    def snapshot(self) -> dict:
        """Plain-dict sample (JSON-serializable)."""
        return {"value": self._value}


class Gauge:
    """A value that can go up and down (fractions, states, levels)."""

    __slots__ = ("_value",)
    kind = "gauge"

    def __init__(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        """The last value set."""
        return self._value

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self._value -= amount

    def snapshot(self) -> dict:
        """Plain-dict sample (JSON-serializable)."""
        return {"value": self._value}


class Histogram:
    """Fixed-layout histogram with log-spaced buckets by default.

    Values below ``edges[0]`` land in the underflow bin, values at or
    above ``edges[-1]`` in the overflow bin, so no observation is ever
    dropped; ``bucket_counts`` has ``len(edges) + 1`` entries
    (underflow first, overflow last).  A running sum and count make the
    mean exact even though per-bucket resolution is one bin.
    """

    __slots__ = ("edges", "_counts", "_sum", "_count")
    kind = "histogram"

    def __init__(
        self,
        *,
        lo: float = 1e-6,
        hi: float = 1e3,
        buckets: int = 54,
        edges: Sequence[float] | None = None,
    ) -> None:
        if edges is not None:
            edges = tuple(float(e) for e in edges)
            if len(edges) < 2 or any(
                b <= a for a, b in zip(edges, edges[1:])
            ):
                raise ObsError(
                    f"edges must be >= 2 strictly increasing values, got {edges!r}"
                )
            self.edges = edges
        else:
            self.edges = log_bucket_edges(lo, hi, buckets)
        self._counts = [0] * (len(self.edges) + 1)
        self._sum = 0.0
        self._count = 0

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return self._count

    @property
    def sum(self) -> float:
        """Exact sum of all observed values."""
        return self._sum

    @property
    def mean(self) -> float:
        """Exact mean of all observed values (nan when empty)."""
        return self._sum / self._count if self._count else math.nan

    @property
    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bin counts, underflow first and overflow last."""
        return tuple(self._counts)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._counts[bisect_right(self.edges, value)] += 1
        self._sum += value
        self._count += 1

    def quantile(self, q: float) -> float:
        """Conservative quantile: upper edge of the bin holding it.

        Resolution is one bucket; underflow resolves to ``edges[0]``
        and overflow to ``edges[-1]``.
        """
        if not (0.0 < q < 1.0):
            raise ObsError(f"q must be in (0, 1), got {q!r}")
        if self._count == 0:
            raise ObsError("quantile of an empty histogram")
        target = q * self._count
        cum = 0
        for i, c in enumerate(self._counts):
            cum += c
            if cum >= target:
                # Bin i spans edges[i-1]..edges[i]; underflow (i = 0)
                # resolves to edges[0], overflow to edges[-1].
                return self.edges[min(i, len(self.edges) - 1)]
        return self.edges[-1]

    def snapshot(self) -> dict:
        """Plain-dict sample (JSON-serializable)."""
        return {
            "count": self._count,
            "sum": self._sum,
            "edges": list(self.edges),
            "buckets": list(self._counts),
        }


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with optional label dimensions.

    With ``labels=()`` the family *is* its single child: ``inc``,
    ``set``, ``observe``, ``value`` and friends delegate to it.  With
    label names, :meth:`labels` returns (get-or-create) the child for a
    concrete label-value combination.
    """

    __slots__ = ("name", "help", "kind", "label_names", "_children", "_kwargs")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        **kwargs,
    ) -> None:
        if not name or not all(c.isalnum() or c == "_" for c in name):
            raise ObsError(
                f"metric names are [A-Za-z0-9_]+, got {name!r}"
            )
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self._kwargs = kwargs
        self._children: dict[tuple, Counter | Gauge | Histogram] = {}
        if not self.label_names:
            self._children[()] = _METRIC_TYPES[kind](**kwargs)

    def labels(self, **label_values):
        """The child metric for one concrete label combination."""
        if set(label_values) != set(self.label_names):
            raise ObsError(
                f"{self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(label_values))}"
            )
        key = tuple(str(label_values[k]) for k in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _METRIC_TYPES[self.kind](**self._kwargs)
        return child

    # -- unlabeled passthrough ---------------------------------------------------------

    def _solo(self):
        if self.label_names:
            raise ObsError(
                f"{self.name} has labels {self.label_names}; call .labels() first"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        """Unlabeled passthrough to the single child's ``inc``."""
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Unlabeled passthrough to the single child's ``dec``."""
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        """Unlabeled passthrough to the single child's ``set``."""
        self._solo().set(value)

    def observe(self, value: float) -> None:
        """Unlabeled passthrough to the single child's ``observe``."""
        self._solo().observe(value)

    @property
    def value(self) -> float:
        """Unlabeled passthrough to the single child's ``value``."""
        return self._solo().value

    @property
    def count(self) -> int:
        """Unlabeled passthrough to the single histogram's ``count``."""
        return self._solo().count

    @property
    def sum(self) -> float:
        """Unlabeled passthrough to the single histogram's ``sum``."""
        return self._solo().sum

    @property
    def mean(self) -> float:
        """Unlabeled passthrough to the single histogram's ``mean``."""
        return self._solo().mean

    @property
    def bucket_counts(self) -> tuple[int, ...]:
        """Unlabeled passthrough to the single histogram's bins."""
        return self._solo().bucket_counts

    @property
    def edges(self) -> tuple[float, ...]:
        """Unlabeled passthrough to the single histogram's edges."""
        return self._solo().edges

    def quantile(self, q: float) -> float:
        """Unlabeled passthrough to the single histogram's quantile."""
        return self._solo().quantile(q)

    @property
    def child(self):
        """The single child of an unlabeled family."""
        return self._solo()

    def items(self) -> Iterator[tuple[dict, Counter | Gauge | Histogram]]:
        """Yield ``(label-mapping, child)`` for every materialized child."""
        for key, child in self._children.items():
            yield dict(zip(self.label_names, key)), child

    def values_by_label(self) -> dict[tuple, float | int]:
        """Map of label-value tuples to scalar values (counter/gauge)."""
        return {key: child.value for key, child in self._children.items()}

    def snapshot(self) -> dict:
        """Plain-dict sample of the whole family (JSON-serializable)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "series": [
                {"labels": labels, **child.snapshot()}
                for labels, child in self.items()
            ],
        }


class MetricsRegistry:
    """Get-or-create store of :class:`MetricFamily` objects by name.

    Re-requesting an existing name returns the same family (the kind
    and label names must match — a mismatch is a programming error and
    raises).  ``collect()``/``to_dict()`` export every family for
    scrapers, JSONL artifacts, and tests.
    """

    enabled = True

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __iter__(self) -> Iterator[MetricFamily]:
        return iter(self._families.values())

    def __len__(self) -> int:
        return len(self._families)

    def _get_or_create(
        self, name: str, kind: str, help: str, labels: Sequence[str], **kwargs
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.label_names != tuple(labels):
                raise ObsError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.label_names}; requested {kind} "
                    f"with labels {tuple(labels)}"
                )
            return family
        family = MetricFamily(name, kind, help, labels, **kwargs)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Get or create a counter family."""
        return self._get_or_create(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Get or create a gauge family."""
        return self._get_or_create(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        *,
        lo: float = 1e-6,
        hi: float = 1e3,
        buckets: int = 54,
        edges: Sequence[float] | None = None,
    ) -> MetricFamily:
        """Get or create a histogram family with a fixed bucket layout."""
        return self._get_or_create(
            name, "histogram", help, labels, lo=lo, hi=hi, buckets=buckets, edges=edges
        )

    def get(self, name: str) -> MetricFamily | None:
        """The family registered under ``name``, or ``None``."""
        return self._families.get(name)

    def collect(self) -> list[dict]:
        """Snapshot every family, sorted by name."""
        return [
            self._families[name].snapshot() for name in sorted(self._families)
        ]

    def to_dict(self) -> dict:
        """``{"metrics": [family snapshots...]}`` for JSON artifacts."""
        return {"metrics": self.collect()}

    def reset(self) -> None:
        """Drop every family (tests and between-run isolation)."""
        self._families.clear()

    def restore_snapshot(self, families: list[dict]) -> None:
        """Load a :meth:`collect` snapshot back into this registry.

        Families present in the snapshot are created if missing (for
        histograms the recorded edges fix the bucket layout) and every
        recorded series overwrites the matching child's state.  Families
        already registered but absent from the snapshot are left alone —
        a restore happens into a freshly built runtime whose accumulators
        pre-register their families at construction.
        """
        for fam_snap in families:
            name = fam_snap["name"]
            kind = fam_snap["kind"]
            labels = tuple(fam_snap.get("labels", ()))
            kwargs = {}
            if kind == "histogram":
                series = fam_snap.get("series", [])
                if series:
                    kwargs["edges"] = tuple(series[0]["edges"])
            family = self._get_or_create(
                name, kind, fam_snap.get("help", ""), labels, **kwargs
            )
            for sample in fam_snap.get("series", []):
                label_values = sample.get("labels", {})
                child = family.labels(**label_values) if labels else family.child
                if kind == "histogram":
                    if tuple(sample["edges"]) != tuple(child.edges):
                        raise ObsError(
                            f"histogram {name!r} bucket layout changed; "
                            "cannot restore snapshot"
                        )
                    child._counts = [int(c) for c in sample["buckets"]]
                    child._sum = float(sample["sum"])
                    child._count = int(sample["count"])
                else:
                    child._value = float(sample["value"])


class NullMetric:
    """Inert metric: every recording call is a no-op, ``value`` is 0.

    A single shared instance stands in for every counter, gauge,
    histogram, *and* family of the :class:`NullRegistry`, so disabled
    instrumentation costs one attribute call and nothing else.
    """

    __slots__ = ()
    kind = "null"
    edges: tuple[float, ...] = ()
    label_names: tuple[str, ...] = ()

    def labels(self, **label_values) -> "NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def items(self):
        return iter(())

    def snapshot(self) -> dict:
        return {}


NULL_METRIC = NullMetric()


class NullRegistry(MetricsRegistry):
    """Registry whose every family is the shared :data:`NULL_METRIC`."""

    enabled = False

    def _get_or_create(self, name, kind, help, labels, **kwargs):  # noqa: ARG002
        return NULL_METRIC

    def collect(self) -> list[dict]:
        return []

    def restore_snapshot(self, families: list[dict]) -> None:  # noqa: ARG002
        """No-op: a null registry holds no state to restore into."""


NULL_REGISTRY = NullRegistry()
