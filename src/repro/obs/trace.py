"""Lightweight span tracing with a ring-buffer JSONL exporter.

A *span* is one timed operation — a solve, a controller decision, a
fallback rung, a routing pick — opened as a context manager:

>>> tracer = Tracer()
>>> with tracer.span("solve", n=7, method="kkt") as sp:
...     sp.note(iterations=42)

Spans nest: the tracer keeps an open-span stack, so a span opened while
another is active records that span as its parent.  Timings come from
``time.perf_counter()`` (monotonic; wall-clock jumps cannot produce
negative durations) and are stored relative to the tracer's epoch so
traces from one process share a common timeline.

Completed spans land in a bounded ring buffer (chaos runs can open one
span per arrival; memory must not grow with the horizon).  The exporter
writes JSON-lines — one span object per line — which ``jq``, pandas,
and the CI artifact viewer all consume without adapters:

``{"span": ..., "id": ..., "parent": ..., "t0": ..., "dur": ...,
"attrs": {...}}``

Buffer order is *completion* order: a child closes before its parent,
so children precede their parent on disk and consumers rebuild the tree
from the ``parent`` ids, not from line order.

:class:`NullTracer` is the disabled stand-in: ``span()`` hands back one
shared inert context manager, so an instrumented-but-disabled hot path
pays a single attribute call per span site.
"""

from __future__ import annotations

import json
import time
from typing import IO, Iterator

from .registry import ObsError

__all__ = ["Span", "Tracer", "NullSpan", "NullTracer", "NULL_SPAN"]


class Span:
    """One open (then completed) traced operation.

    Created by :meth:`Tracer.span` — not directly.  Inside the ``with``
    block, :meth:`note` attaches result attributes (iteration counts,
    cache verdicts) that are only known once the work is done.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "_tracer", "_t0")

    def __init__(
        self, tracer: "Tracer", name: str, span_id: int, parent_id: int | None, attrs: dict
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self._tracer = tracer
        self._t0 = 0.0

    def note(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._finish(self, self._t0, end - self._t0)


class Tracer:
    """Span factory, open-span stack, and completed-span ring buffer.

    Parameters
    ----------
    capacity:
        Maximum retained completed spans; older spans are evicted (and
        counted in :attr:`dropped`) once the buffer is full.
    """

    enabled = True

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ObsError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        #: Completed spans evicted from the ring buffer so far.
        self.dropped = 0
        self._epoch = time.perf_counter()
        self._records: list[dict] = []
        self._head = 0  # ring-buffer write position once full
        self._stack: list[Span] = []
        self._next_id = 0

    def span(self, name: str, **attrs) -> Span:
        """Open a span; use as a context manager."""
        self._next_id += 1
        parent = self._stack[-1].span_id if self._stack else None
        return Span(self, name, self._next_id, parent, attrs)

    def _finish(self, span: Span, t0: float, duration: float) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # pragma: no cover - misnested exit; drop up to the span
            while self._stack:
                if self._stack.pop() is span:
                    break
        record = {
            "span": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "t0": t0 - self._epoch,
            "dur": duration,
            "attrs": span.attrs,
        }
        if len(self._records) < self.capacity:
            self._records.append(record)
        else:
            self._records[self._head] = record
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    @property
    def open_depth(self) -> int:
        """How many spans are currently open (nesting depth)."""
        return len(self._stack)

    @property
    def records(self) -> tuple[dict, ...]:
        """Completed spans, oldest retained first."""
        return tuple(self._records[self._head :] + self._records[: self._head])

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.records)

    def of_name(self, name: str) -> tuple[dict, ...]:
        """Retained spans with one name, oldest first."""
        return tuple(r for r in self.records if r["span"] == name)

    def clear(self) -> None:
        """Drop all retained spans (open spans are unaffected)."""
        self._records.clear()
        self._head = 0
        self.dropped = 0

    def dump_jsonl(self, fh: IO[str]) -> int:
        """Write retained spans as JSON-lines; returns the line count."""
        n = 0
        for record in self.records:
            fh.write(json.dumps(record, sort_keys=True, default=str))
            fh.write("\n")
            n += 1
        return n

    def export_jsonl(self, path: str) -> int:
        """Write retained spans to ``path`` as JSONL; returns line count."""
        with open(path, "w", encoding="utf-8") as fh:
            return self.dump_jsonl(fh)


class NullSpan:
    """Inert span: context manager and ``note`` are no-ops."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    span_id = 0
    parent_id = None

    def note(self, **attrs) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = NullSpan()


class NullTracer:
    """Disabled tracer: every ``span()`` is the shared :data:`NULL_SPAN`."""

    enabled = False
    capacity = 0
    dropped = 0
    open_depth = 0
    records: tuple = ()

    def span(self, name: str, **attrs) -> NullSpan:
        return NULL_SPAN

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[dict]:
        return iter(())

    def of_name(self, name: str) -> tuple:
        return ()

    def clear(self) -> None:
        pass

    def dump_jsonl(self, fh: IO[str]) -> int:
        return 0

    def export_jsonl(self, path: str) -> int:
        with open(path, "w", encoding="utf-8"):
            return 0


NULL_TRACER = NullTracer()
