"""The public facade: ``repro.solve`` and friends.

One call runs the paper's optimization end to end::

    >>> import repro
    >>> group = repro.BladeServerGroup.from_arrays(
    ...     sizes=[1, 2], speeds=[1.0, 2.0], special_rates=[0.2, 0.3]
    ... )
    >>> res = repro.solve(group, 1.5, discipline="fcfs")
    >>> res.mean_response_time            # doctest: +SKIP
    1.23456

``solve`` accepts either a :class:`~repro.core.server.BladeServerGroup`
or a plain sequence of :class:`~repro.core.server.BladeServer`, resolves
the backend through the method registry in :mod:`repro.core.solvers`
(``method="paper"`` is an alias for the paper's nested bisection), and
returns a :class:`SolveResult` — the familiar
:class:`~repro.core.result.LoadDistributionResult` plus the resolved
backend name and the wall-clock the solve took.

:func:`solve_sweep` is the batched variant for figure grids, threading
``phi`` warm starts between consecutive points for the backends that
support them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Iterable, Sequence

from .core.response import Discipline
from .core.result import LoadDistributionResult
from .core.server import BladeServer, BladeServerGroup
from .core.solvers import dispatch, resolve_method, warm_startable_methods

__all__ = ["SolveResult", "solve", "solve_sweep", "as_group"]

#: Friendly method aliases accepted by the facade on top of the
#: registry's canonical names.  ``"paper"`` names the algorithm as
#: published (nested bisection, Figs. 2-3).
METHOD_ALIASES: dict[str, str] = {"paper": "bisection"}


@dataclass(frozen=True)
class SolveResult(LoadDistributionResult):
    """A :class:`LoadDistributionResult` plus facade-level context.

    Attributes
    ----------
    backend:
        The registry name of the backend that actually ran (``"auto"``
        and aliases resolved — e.g. ``"kkt"``, ``"vectorized"``).
    elapsed_seconds:
        Wall-clock duration of the backend call.
    """

    backend: str = ""
    elapsed_seconds: float = 0.0

    @classmethod
    def _wrap(
        cls, result: LoadDistributionResult, backend: str, elapsed: float
    ) -> "SolveResult":
        base = {f.name: getattr(result, f.name) for f in fields(LoadDistributionResult)}
        return cls(**base, backend=backend, elapsed_seconds=float(elapsed))


def as_group(
    servers: BladeServerGroup | Iterable[BladeServer], rbar: float = 1.0
) -> BladeServerGroup:
    """Coerce the facade's ``servers`` argument to a
    :class:`BladeServerGroup`.

    A group passes through unchanged (``rbar`` ignored); an iterable of
    :class:`BladeServer` is wrapped into a new group sharing ``rbar``.
    """
    if isinstance(servers, BladeServerGroup):
        return servers
    return BladeServerGroup(servers, rbar=rbar)


def _resolve_alias(method: str) -> str:
    return METHOD_ALIASES.get(method.lower(), method)


def solve(
    servers: BladeServerGroup | Iterable[BladeServer],
    lam: float,
    *,
    discipline: Discipline | str = Discipline.FCFS,
    method: str = "auto",
    rbar: float = 1.0,
    **solver_kwargs,
) -> SolveResult:
    """Optimally distribute generic load ``lam`` over ``servers``.

    The one public entry point for the paper's optimization (Tables
    1-2, every figure): minimizes the mean generic-task response time
    ``T'`` subject to ``sum_i lambda'_i = lam`` and per-server
    stability.

    Parameters
    ----------
    servers:
        A :class:`BladeServerGroup`, or any iterable of
        :class:`BladeServer` (wrapped into a group with ``rbar``).
    lam:
        Total generic arrival rate ``lambda'``; must be strictly below
        the group's saturation point.
    discipline:
        ``"fcfs"`` (generic and special tasks share the queue, paper
        Section 3) or ``"priority"`` (special tasks preempt, Section 4).
    method:
        ``"auto"`` (default), a registered backend name
        (``"bisection"``, ``"kkt"``, ``"slsqp"``, ``"closed-form"``,
        ``"vectorized"``), or the alias ``"paper"`` for the published
        nested bisection.
    rbar:
        Shared mean task size, used only when ``servers`` is a plain
        sequence.
    **solver_kwargs:
        Backend extras, e.g. ``tol=1e-12`` or ``phi_hint=...`` for the
        bisection family.

    Returns
    -------
    SolveResult
        The optimal rates, ``T'``, multiplier ``phi``, utilizations,
        per-server response times — plus the resolved backend name and
        elapsed wall-clock.

    Raises
    ------
    InfeasibleError
        If ``lam`` meets or exceeds the group's saturation point.
    ParameterError
        On an unknown method or malformed inputs.
    """
    group = as_group(servers, rbar=rbar)
    backend = resolve_method(group, _resolve_alias(method))
    start = time.perf_counter()
    result = dispatch(group, float(lam), discipline, method=backend, **solver_kwargs)
    elapsed = time.perf_counter() - start
    return SolveResult._wrap(result, backend, elapsed)


def solve_sweep(
    servers: BladeServerGroup | Iterable[BladeServer],
    rates: Sequence[float],
    *,
    discipline: Discipline | str = Discipline.FCFS,
    method: str = "auto",
    warm_start: bool = True,
    rbar: float = 1.0,
    **solver_kwargs,
) -> list[SolveResult]:
    """Run :func:`solve` at every ``lambda'`` of a sweep grid, in order.

    For warm-startable backends (the bisection family), each point
    after the first passes the previous point's converged ``phi`` as
    ``phi_hint``, so the solver brackets the new multiplier around the
    old one instead of re-doubling from the cold-start seed.  Results
    are identical to cold starts up to the solver tolerance; only the
    bracketing work changes.

    Parameters
    ----------
    servers, discipline, method, rbar, **solver_kwargs:
        As in :func:`solve`.
    rates:
        Total generic arrival rates, one sweep point each.  Warm
        starting works best when they are monotone (as the figure grids
        are), but correctness does not depend on ordering.
    warm_start:
        Disable to force every point onto the cold-start path (used by
        benchmarks comparing the two).

    Notes
    -----
    ``method="sharded"`` sweeps are both plan-cached and shard-aware:
    the fleet is partitioned once for the whole grid, and each point's
    warm start is the previous point's *per-shard* multiplier mapping
    (``metadata["shard_phi"]``) rather than a single scalar, so every
    shard's inner roots are seeded where that shard last converged.
    """
    group = as_group(servers, rbar=rbar)
    backend = resolve_method(group, _resolve_alias(method))
    hintable = warm_start and backend in warm_startable_methods()
    solver_kwargs = dict(solver_kwargs)
    if backend == "sharded":
        # Partition once for the whole grid; the plan also makes the
        # per-shard phi_hint mappings below line up point to point.
        from .shard.coordinator import resolve_plan

        solver_kwargs["plan"] = resolve_plan(
            group,
            config=solver_kwargs.pop("config", None),
            plan=solver_kwargs.pop("plan", None),
            shards=solver_kwargs.pop("shards", None),
            strategy=solver_kwargs.pop("strategy", None),
            assignment=solver_kwargs.pop("assignment", None),
            top_k=solver_kwargs.pop("top_k", None),
        )
    results: list[SolveResult] = []
    hint = None
    for rate in rates:
        kwargs = dict(solver_kwargs)
        if hintable and hint is not None:
            kwargs["phi_hint"] = hint
        res = solve(
            group, float(rate), discipline=discipline, method=backend, **kwargs
        )
        if hintable:
            # Shard-aware warm starts: the sharded backend publishes a
            # per-shard multiplier mapping, which it also accepts as a
            # hint; every other warm-startable backend takes the scalar.
            shard_phi = (res.metadata or {}).get("shard_phi")
            hint = shard_phi if shard_phi is not None else res.phi
        results.append(res)
    return results
