"""Erlang blocking/queueing formulas for M/M/m stations.

This module provides the probabilistic building blocks of the paper's
queueing model (Section 3 of Li, *J. Grid Computing* 2013):

* ``p_{i,0}`` — the empty-system probability of an M/M/m queue,
* ``p_{i,k}`` — the steady-state distribution of the number in system,
* ``P_{q,i}`` — the probability of queueing (Erlang-C),
* the Erlang-B blocking probability used as a numerically stable
  stepping stone to Erlang-C.

Two implementation strategies are offered and cross-checked in the test
suite:

``*_direct``
    Literal transcriptions of the paper's formulas using explicit sums
    and factorials.  Exact for the paper's parameter ranges
    (``m <= 15``) and kept as the readable reference.

default (stable recurrence)
    The classical Erlang-B recurrence ``B(0) = 1``,
    ``B(k) = a B(k-1) / (k + a B(k-1))`` with ``a = m rho`` the offered
    load, which never forms a factorial and is stable for thousands of
    servers.  Erlang-C and ``p_0`` are then recovered from Erlang-B via

    .. math::

        C = \\frac{m B}{m - a (1 - B)}, \\qquad
        p_0^{-1} = \\sum_{k=0}^{m-1} \\frac{a^k}{k!}
                  + \\frac{a^m}{m!}\\frac{1}{1-\\rho},

    where the partial sums are accumulated through the scaled ratio
    ``t_k = t_{k-1} a / k`` relative to the largest term, avoiding
    overflow.

All functions validate ``0 <= rho < 1`` (steady state requires strict
inequality whenever a queueing metric is requested) and raise
:class:`~repro.core.exceptions.SaturationError` otherwise.
"""

from __future__ import annotations

import math

import numpy as _np

from .exceptions import ParameterError, SaturationError

__all__ = [
    "erlang_b",
    "erlang_c",
    "p_zero",
    "p_zero_direct",
    "p_k",
    "prob_queueing",
    "prob_queueing_direct",
    "dp_zero_drho",
    "d2p_zero_drho2",
    "log_p_zero",
]


def _check_m(m: int) -> None:
    if not isinstance(m, (int, _np.integer)) or isinstance(m, bool):
        raise ParameterError(f"server size m must be an int, got {m!r}")
    if m < 1:
        raise ParameterError(f"server size m must be >= 1, got {m}")


def _check_rho(rho: float, *, allow_one: bool = False) -> None:
    if not math.isfinite(rho):
        raise ParameterError(f"utilization rho must be finite, got {rho!r}")
    if rho < 0.0:
        raise ParameterError(f"utilization rho must be >= 0, got {rho}")
    if allow_one:
        if rho > 1.0:
            raise SaturationError(
                f"utilization rho must be <= 1, got {rho}", rho=rho
            )
    elif rho >= 1.0:
        raise SaturationError(
            f"M/M/m steady state requires rho < 1, got {rho}", rho=rho
        )


def erlang_b(m: int, a: float) -> float:
    """Erlang-B blocking probability ``B(m, a)``.

    Parameters
    ----------
    m:
        Number of servers (blades), ``m >= 1``.
    a:
        Offered load ``a = lambda * xbar`` in Erlangs, ``a >= 0``.

    Returns
    -------
    float
        The probability that all ``m`` servers are busy in an M/M/m/m
        (loss) system, computed by the standard overflow recurrence.
        Stable for very large ``m`` (no factorials are formed).
    """
    _check_m(m)
    if not math.isfinite(a) or a < 0.0:
        raise ParameterError(f"offered load a must be finite and >= 0, got {a!r}")
    if a == 0.0:
        return 0.0
    b = 1.0
    for k in range(1, m + 1):
        b = a * b / (k + a * b)
    return b


def erlang_c(m: int, rho: float) -> float:
    """Erlang-C probability of queueing for an M/M/m queue.

    This equals the paper's ``P_{q,i}``: the probability that a newly
    arrived task finds all ``m`` blades busy and must wait.

    Parameters
    ----------
    m:
        Number of blades.
    rho:
        Per-blade utilization ``rho = lambda * xbar / m``, ``0 <= rho < 1``.
    """
    _check_m(m)
    _check_rho(rho)
    if rho == 0.0:
        return 0.0
    a = m * rho
    b = erlang_b(m, a)
    return m * b / (m - a * (1.0 - b))


def p_zero(m: int, rho: float) -> float:
    """Empty-system probability ``p_0`` of an M/M/m queue (stable form).

    Uses a scaled term recurrence so it neither overflows nor loses all
    precision for large ``m``; agrees with :func:`p_zero_direct` to
    machine precision on the paper's parameter ranges.
    """
    _check_m(m)
    _check_rho(rho)
    if rho == 0.0:
        return 1.0
    a = m * rho
    # Accumulate sum_{k=0}^{m-1} a^k/k! + a^m/m! / (1-rho) relative to the
    # largest term to stay in floating-point range.
    term = 1.0  # a^0/0!
    total = 1.0
    for k in range(1, m):
        term *= a / k
        total += term
        if total > 1e290:  # rescale to avoid overflow
            scale = total
            term /= scale
            total = 1.0
            return _p_zero_rescaled(m, rho, k, term, total, math.log(scale))
    # Tail term a^m/m!: the recurrence leaves term = a^{m-1}/(m-1)!, so one
    # more step covers every m >= 1 (for m = 1 it reduces to a itself).
    term_m = term * a / m
    total += term_m / (1.0 - rho)
    return 1.0 / total


def _p_zero_rescaled(
    m: int, rho: float, k_start: int, term: float, total: float, log_scale: float
) -> float:
    """Continuation of :func:`p_zero` after a rescale event.

    Finishes the partial-sum recurrence in the rescaled frame and folds
    the accumulated log-scale back in at the end.  Only exercised for
    extremely large offered loads (``m`` in the thousands).
    """
    a = m * rho
    for k in range(k_start + 1, m):
        term *= a / k
        total += term
        if total > 1e290:
            scale = total
            term /= scale
            total = 1.0
            log_scale += math.log(scale)
    term_m = term * a / m
    total += term_m / (1.0 - rho)
    return math.exp(-log_scale) / total


def log_p_zero(m: int, rho: float) -> float:
    """Natural logarithm of ``p_0`` computed fully in log space.

    Useful for tail computations with very large ``m`` where even the
    rescaled linear-space sum would lose precision.  Uses
    ``logsumexp``-style accumulation over the ``m + 1`` terms of
    ``p_0^{-1}``.
    """
    _check_m(m)
    _check_rho(rho)
    if rho == 0.0:
        return 0.0
    a = m * rho
    log_a = math.log(a)
    # log-terms: k*log a - log k! for k < m, and the tail term.
    log_terms = [k * log_a - math.lgamma(k + 1) for k in range(m)]
    log_terms.append(m * log_a - math.lgamma(m + 1) - math.log1p(-rho))
    peak = max(log_terms)
    s = sum(math.exp(t - peak) for t in log_terms)
    return -(peak + math.log(s))


def p_zero_direct(m: int, rho: float) -> float:
    """Literal transcription of the paper's ``p_{i,0}`` formula.

    .. math::

        p_0 = \\left( \\sum_{k=0}^{m-1} \\frac{(m\\rho)^k}{k!}
              + \\frac{(m\\rho)^m}{m!}\\frac{1}{1-\\rho} \\right)^{-1}

    Exact but overflow-prone for ``m`` beyond a few hundred; retained as
    the readable reference implementation and for cross-checking.
    """
    _check_m(m)
    _check_rho(rho)
    a = m * rho
    s = sum(a**k / math.factorial(k) for k in range(m))
    s += a**m / math.factorial(m) / (1.0 - rho)
    return 1.0 / s


def p_k(m: int, rho: float, k: int) -> float:
    """Steady-state probability of ``k`` tasks in an M/M/m system.

    Implements the paper's two-branch expression

    .. math::

        p_k = p_0 (m\\rho)^k / k!          \\quad (k \\le m), \\qquad
        p_k = p_0 m^m \\rho^k / m!          \\quad (k \\ge m).

    The two branches agree at ``k = m``.
    """
    _check_m(m)
    _check_rho(rho)
    if k < 0:
        raise ParameterError(f"k must be >= 0, got {k}")
    if rho == 0.0:
        return 1.0 if k == 0 else 0.0
    p0 = p_zero(m, rho)
    a = m * rho
    if k <= m:
        log_term = k * math.log(a) - math.lgamma(k + 1)
    else:
        log_term = m * math.log(m) + k * math.log(rho) - math.lgamma(m + 1)
    return p0 * math.exp(log_term)


def prob_queueing(m: int, rho: float) -> float:
    """Probability of queueing ``P_q`` (alias built on :func:`erlang_c`).

    Equal to ``p_m / (1 - rho)`` per the paper's derivation.
    """
    return erlang_c(m, rho)


def prob_queueing_direct(m: int, rho: float) -> float:
    """Paper-literal ``P_q = p_0 (m rho)^m / m! / (1 - rho)``."""
    _check_m(m)
    _check_rho(rho)
    a = m * rho
    return p_zero_direct(m, rho) * a**m / math.factorial(m) / (1.0 - rho)


def dp_zero_drho(m: int, rho: float) -> float:
    """Analytic derivative ``d p_0 / d rho`` from the paper.

    .. math::

        \\frac{\\partial p_0}{\\partial \\rho} = -p_0^2 \\left(
            \\sum_{k=1}^{m-1} \\frac{m^k \\rho^{k-1}}{(k-1)!}
            + \\frac{m^m}{m!}
              \\frac{\\rho^{m-1}(m - (m-1)\\rho)}{(1-\\rho)^2}
        \\right)

    Evaluated with a scaled term recurrence (terms are generated as
    ``u_k = m^k rho^{k-1}/(k-1)!`` via ``u_{k+1} = u_k * m rho / k``) so
    the expression stays finite for large ``m``.
    """
    _check_m(m)
    _check_rho(rho)
    p0 = p_zero(m, rho)
    a = m * rho
    # sum_{k=1}^{m-1} m^k rho^{k-1} / (k-1)!
    s = 0.0
    if m >= 2:
        u = float(m)  # k = 1 term: m^1 rho^0 / 0!
        s = u
        for k in range(2, m):
            u *= a / (k - 1)
            s += u
    # tail term: m^m/m! * rho^{m-1} (m - (m-1) rho) / (1-rho)^2
    log_tail = (
        m * math.log(m)
        - math.lgamma(m + 1)
        + (m - 1) * (math.log(rho) if rho > 0.0 else -math.inf)
    )
    if rho > 0.0:
        tail = math.exp(log_tail) * (m - (m - 1) * rho) / (1.0 - rho) ** 2
    else:
        tail = 0.0 if m > 1 else 1.0  # m=1: rho^{0} * (1)/(1-rho)^2 at rho=0
    if m == 1:
        # No finite sum; tail is (1)/(1!) * rho^0 (1 - 0*rho)/(1-rho)^2.
        tail = 1.0 / (1.0 - rho) ** 2
        s = 0.0
    return -p0 * p0 * (s + tail)


def d2p_zero_drho2(m: int, rho: float) -> float:
    """Analytic second derivative ``d^2 p_0 / d rho^2``.

    With ``p_0 = 1/S(rho)`` and ``S`` the normalizing sum of the M/M/m
    steady state, differentiating ``p_0' = -p_0^2 S'`` once more gives

    .. math::

        \\frac{\\partial^2 p_0}{\\partial \\rho^2}
            = p_0^2 \\left( 2 p_0 (S')^2 - S'' \\right),
        \\qquad
        S'' = \\sum_{k=2}^{m-1} \\frac{m^k \\rho^{k-2}}{(k-2)!}
            + \\frac{m^m}{m!} \\left[
                \\frac{m(m-1)\\rho^{m-2}}{1-\\rho}
              + \\frac{2\\rho^{m-1}(m-(m-1)\\rho)}{(1-\\rho)^3}
              \\right].

    (The tail uses ``d/d rho [rho^{m-1}(m-(m-1)rho)]
    = m(m-1) rho^{m-2}(1-rho)``, which cancels one ``1-rho``.)  For
    ``m = 1`` the empty-system probability is the linear ``1 - rho``,
    so the second derivative is exactly zero.  Needed by the
    damped-Newton backend, which takes second-order steps on the dual.
    """
    _check_m(m)
    _check_rho(rho)
    if m == 1:
        return 0.0
    p0 = p_zero(m, rho)
    a = m * rho
    # S' head and tail — same structure as :func:`dp_zero_drho`.
    s1 = float(m)  # k = 1 term: m^1 rho^0 / 0!
    u = float(m)
    for k in range(2, m):
        u *= a / (k - 1)
        s1 += u
    # S'' head: sum_{k=2}^{m-1} m^k rho^{k-2}/(k-2)!  (empty for m <= 2).
    s2 = 0.0
    if m >= 3:
        v = float(m) * m  # k = 2 term: m^2 rho^0 / 0!
        s2 = v
        for k in range(3, m):
            v *= a / (k - 2)
            s2 += v
    log_c = m * math.log(m) - math.lgamma(m + 1)
    c = math.exp(log_c)
    if rho > 0.0:
        tail1 = (
            c * rho ** (m - 1) * (m - (m - 1) * rho) / (1.0 - rho) ** 2
        )
        tail2 = c * (
            m * (m - 1) * rho ** (m - 2) / (1.0 - rho)
            + 2.0 * rho ** (m - 1) * (m - (m - 1) * rho) / (1.0 - rho) ** 3
        )
    else:
        # rho -> 0: only the rho^{m-2} tail term survives, and only at
        # m = 2 (where it equals m(m-1) c = m^2 - s2's missing head).
        tail1 = 0.0
        tail2 = c * m * (m - 1) if m == 2 else 0.0
    sp = s1 + tail1
    spp = s2 + tail2
    return p0 * p0 * (2.0 * p0 * sp * sp - spp)
