"""Closed-form optima for single-blade servers (Theorems 1 and 3).

When every server has exactly one blade (``m_i = 1``), each station is
an M/M/1 queue and the Lagrange system collapses to algebra:

Theorem 1 (special tasks without priority)
    .. math::

        \\lambda'_i = \\frac{1}{\\bar x_i}\\left(1 - \\rho''_i
            - \\sqrt{\\frac{\\bar x_i (1-\\rho''_i)}{\\lambda' \\phi}}\\right),
        \\qquad
        \\phi = \\left(\\frac{\\frac{1}{\\sqrt{\\lambda'}}
            \\sum_i \\sqrt{(1-\\rho''_i)/\\bar x_i}}
            {\\sum_i (1-\\rho''_i)/\\bar x_i - \\lambda'}\\right)^2 .

Theorem 3 (special tasks with priority)
    ``lambda'_i`` follows the same pattern with the square-root argument
    replaced by ``(lambda' phi / xbar_i + rho''_i/(1 - rho''_i))^{-1}``;
    the multiplier ``phi`` is the root of the budget equation
    ``sum_i lambda'_i(phi) = lambda'``, found here with ``brentq``.

Caveat (documented divergence from the paper's presentation): the
closed forms assume an *interior* optimum — every server receives
strictly positive generic load.  At low ``lambda'`` a fast-but-loaded
group can push some ``lambda'_i`` negative, meaning the true optimum
parks those servers at zero.  Both solvers detect this and fall back to
an active-set iteration: drop the most negative server, re-solve the
closed form on the remainder, repeat.  This is exact (it is just KKT
complementary slackness) and keeps the closed forms usable across the
entire feasible range, not only the paper's example loads.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import brentq

from .exceptions import ConvergenceError, ParameterError
from .response import Discipline
from .result import LoadDistributionResult
from .server import BladeServerGroup

__all__ = ["solve_closed_form_fcfs", "solve_closed_form_priority", "solve_closed_form"]


def _require_single_blade(group: BladeServerGroup) -> None:
    if any(srv.size != 1 for srv in group.servers):
        raise ParameterError(
            "closed-form solvers require every server to have size m_i = 1"
        )


def _package(
    group: BladeServerGroup,
    rates: np.ndarray,
    phi: float,
    disc: Discipline,
    method: str,
) -> LoadDistributionResult:
    return LoadDistributionResult(
        generic_rates=rates,
        mean_response_time=group.mean_response_time(rates, disc),
        phi=phi,
        discipline=disc,
        method=method,
        utilizations=group.utilizations(rates),
        per_server_response_times=group.per_server_response_times(rates, disc),
        converged=True,
    )


def solve_closed_form_fcfs(
    group: BladeServerGroup, total_rate: float
) -> LoadDistributionResult:
    """Theorem 1: closed-form optimum for all-M/M/1 groups, FCFS discipline."""
    _require_single_blade(group)
    group.check_feasible(total_rate)
    xbars = group.xbars
    rho2 = group.special_utilizations
    active = np.ones(group.n, dtype=bool)

    for _ in range(group.n):
        xb = xbars[active]
        r2 = rho2[active]
        denom = float(((1.0 - r2) / xb).sum()) - total_rate
        if denom <= 0.0:
            raise ConvergenceError(
                "active set lost feasibility; instance too close to saturation"
            )
        sqrt_phi = (
            (1.0 / math.sqrt(total_rate)) * float(np.sqrt((1.0 - r2) / xb).sum())
        ) / denom
        phi = sqrt_phi**2
        lam = (1.0 - r2 - np.sqrt(xb * (1.0 - r2) / (total_rate * phi))) / xb
        if np.all(lam >= 0.0):
            rates = np.zeros(group.n)
            rates[active] = lam
            return _package(
                group, rates, phi, Discipline.FCFS, "closed-form-theorem1"
            )
        # Active-set step: park the worst offender at zero and re-solve.
        idx_active = np.flatnonzero(active)
        worst = idx_active[int(np.argmin(lam))]
        active[worst] = False
        if not active.any():
            raise ConvergenceError("active set emptied; instance is degenerate")
    raise ConvergenceError("active-set iteration failed to terminate")


def solve_closed_form_priority(
    group: BladeServerGroup, total_rate: float
) -> LoadDistributionResult:
    """Theorem 3: closed-form optimum for all-M/M/1 groups, priority discipline.

    ``phi`` has no algebraic expression here; it is the root of the
    budget equation, located with Brent's method on a bracket built by
    doubling.
    """
    _require_single_blade(group)
    group.check_feasible(total_rate)
    xbars = group.xbars
    rho2 = group.special_utilizations
    active = np.ones(group.n, dtype=bool)

    for _ in range(group.n):
        xb = xbars[active]
        r2 = rho2[active]

        def lam_of_phi(phi: float) -> np.ndarray:
            inner = total_rate * phi / xb + r2 / (1.0 - r2)
            return (1.0 - r2 - np.sqrt(1.0 / inner)) / xb

        def budget(phi: float) -> float:
            return float(lam_of_phi(phi).sum()) - total_rate

        # For phi -> 0+, inner -> r2/(1-r2) and lam can be very negative;
        # budget is increasing in phi, so bracket by doubling.
        lo = 1e-12
        while budget(lo) > 0.0:
            lo *= 0.5
            if lo < 1e-300:
                raise ConvergenceError("failed to bracket phi from below")
        hi = max(2.0 * lo, 1e-6)
        for _ in range(4000):
            if budget(hi) >= 0.0:
                break
            hi *= 2.0
        else:
            raise ConvergenceError("failed to bracket phi from above")
        phi = float(brentq(budget, lo, hi, xtol=1e-15, rtol=8.9e-16))
        lam = lam_of_phi(phi)
        if np.all(lam >= 0.0):
            rates = np.zeros(group.n)
            rates[active] = lam
            return _package(
                group, rates, phi, Discipline.PRIORITY, "closed-form-theorem3"
            )
        idx_active = np.flatnonzero(active)
        worst = idx_active[int(np.argmin(lam))]
        active[worst] = False
        if not active.any():
            raise ConvergenceError("active set emptied; instance is degenerate")
    raise ConvergenceError("active-set iteration failed to terminate")


def solve_closed_form(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
) -> LoadDistributionResult:
    """Dispatch to Theorem 1 or Theorem 3 based on the discipline."""
    disc = Discipline.coerce(discipline)
    if disc is Discipline.FCFS:
        return solve_closed_form_fcfs(group, total_rate)
    return solve_closed_form_priority(group, total_rate)
