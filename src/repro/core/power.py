"""Joint speed scaling and load distribution under a power budget.

A natural extension the paper's conclusion gestures at (and the
author's later work pursues): blade speeds are not fixed — DVFS lets
the operator *choose* ``s_i``, but dynamic power grows superlinearly,
``P_i = m_i s_i^alpha`` with ``alpha`` typically around 3.  Given a
total power budget, what speed vector (and induced optimal load
distribution) minimizes the mean generic response time?

Formulation::

    minimize    T'(speeds)  =  min over rates of the paper's objective
    subject to  sum_i m_i s_i^alpha  <=  budget
                s_i  >=  s_min_i  (enough to keep every server stable
                                   under its own special load)

The inner problem is the paper's optimization (solved by the KKT
backend); the outer problem over speeds is smooth and is handed to
scipy's SLSQP with the power constraint.  Special-task rates are held
*fixed* while speeds vary (the dedicated workload does not change just
because the blades clock differently), so speeding a server up both
shortens its service times and frees capacity eaten by its preload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import minimize

from .exceptions import ConvergenceError, InfeasibleError, ParameterError
from .kkt import solve_kkt
from .response import Discipline
from .result import LoadDistributionResult
from .server import BladeServerGroup

__all__ = ["PowerAllocationResult", "optimize_speeds_under_power"]

#: Utilization every server must be able to reach below 1 at s_min.
_SPECIAL_HEADROOM = 0.98


@dataclass(frozen=True)
class PowerAllocationResult:
    """Outcome of the joint speed/load optimization."""

    #: Optimal blade speeds ``s_i``.
    speeds: np.ndarray
    #: Power drawn per server, ``m_i s_i^alpha``.
    powers: np.ndarray
    #: Total power (``<= budget``).
    total_power: float
    #: The inner load-distribution result at the optimal speeds.
    distribution: LoadDistributionResult
    #: SLSQP iterations of the outer problem.
    iterations: int

    @property
    def mean_response_time(self) -> float:
        """The achieved ``T'``."""
        return self.distribution.mean_response_time


def optimize_speeds_under_power(
    sizes: Sequence[int],
    special_rates: Sequence[float],
    total_rate: float,
    power_budget: float,
    alpha: float = 3.0,
    rbar: float = 1.0,
    discipline: Discipline | str = Discipline.FCFS,
    max_iter: int = 80,
) -> PowerAllocationResult:
    """Choose blade speeds under ``sum m_i s_i^alpha <= budget``.

    Parameters
    ----------
    sizes, special_rates, rbar:
        The fixed part of the fleet: blade counts, dedicated loads, and
        the mean execution requirement.
    total_rate:
        Generic arrival rate to be optimally distributed at every
        candidate speed vector.
    power_budget:
        Upper bound on ``sum_i m_i s_i^alpha``.
    alpha:
        Dynamic-power exponent (``> 1``; cubic by default).

    Raises
    ------
    InfeasibleError
        If even spending the whole budget cannot stabilize the fleet
        under ``special + generic`` load.
    """
    sizes_arr = np.asarray(sizes, dtype=int)
    specials = np.asarray(special_rates, dtype=float)
    n = sizes_arr.size
    if specials.shape != (n,):
        raise ParameterError(
            f"special_rates shape {specials.shape} != ({n},)"
        )
    if not (math.isfinite(alpha) and alpha > 1.0):
        raise ParameterError(f"alpha must be > 1, got {alpha!r}")
    if not (math.isfinite(power_budget) and power_budget > 0.0):
        raise ParameterError(f"power_budget must be > 0, got {power_budget!r}")
    if not (math.isfinite(total_rate) and total_rate > 0.0):
        raise ParameterError(f"total_rate must be > 0, got {total_rate!r}")

    # Minimum speeds: each server must absorb its own special load with
    # a little headroom even if it gets zero generic traffic.
    s_min = specials * rbar / (sizes_arr * _SPECIAL_HEADROOM)
    s_min = np.maximum(s_min, 1e-3)
    if float((sizes_arr * s_min**alpha).sum()) > power_budget:
        raise InfeasibleError(
            "power budget too small to stabilize the dedicated load",
            total_rate=total_rate,
            capacity=power_budget,
        )

    def make_group(speeds: np.ndarray) -> BladeServerGroup:
        return BladeServerGroup.from_arrays(
            sizes_arr.tolist(), speeds.tolist(), specials.tolist(), rbar=rbar
        )

    def inner(speeds: np.ndarray) -> LoadDistributionResult | None:
        group = make_group(np.maximum(speeds, s_min))
        if total_rate >= group.max_generic_rate:
            return None
        return solve_kkt(group, total_rate, discipline)

    # Penalized objective: infeasible speed vectors (group saturated)
    # get a large, smoothly increasing penalty to push SLSQP back in.
    def objective(speeds: np.ndarray) -> float:
        res = inner(speeds)
        if res is None:
            group_cap = float(
                (sizes_arr * np.maximum(speeds, s_min) / rbar - specials).sum()
            )
            return 1e3 + 1e2 * max(0.0, total_rate - group_cap)
        return res.mean_response_time

    # Start: spend the budget proportionally to blade count (uniform
    # speeds) — always inside the power constraint.
    s0 = (power_budget / float(sizes_arr.sum())) ** (1.0 / alpha)
    x0 = np.full(n, s0)

    res = minimize(
        objective,
        x0,
        method="SLSQP",
        bounds=[(float(lo), None) for lo in s_min],
        constraints=[
            {
                "type": "ineq",
                "fun": lambda s: power_budget - float((sizes_arr * s**alpha).sum()),
                "jac": lambda s: -(alpha * sizes_arr * s ** (alpha - 1.0)),
            }
        ],
        options={"maxiter": max_iter, "ftol": 1e-10},
    )
    speeds = np.maximum(res.x, s_min)
    final = inner(speeds)
    if final is None or not res.success:
        raise ConvergenceError(
            f"outer speed optimization failed: {res.message}", best=speeds
        )
    powers = sizes_arr * speeds**alpha
    return PowerAllocationResult(
        speeds=speeds,
        powers=powers,
        total_power=float(powers.sum()),
        distribution=final,
        iterations=int(res.nit),
    )
