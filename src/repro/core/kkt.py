"""Water-filling KKT solver built on :func:`scipy.optimize.brentq`.

An independent re-derivation of the paper's optimum used to cross-check
the faithful bisection transcription.  Structure:

1. For a candidate multiplier ``phi``, each server's optimal rate is the
   unique root of ``g_i(lambda) = phi`` where ``g_i`` is the (strictly
   increasing) marginal cost, or 0 when ``g_i(0) >= phi`` — the KKT
   complementary-slackness case of a server too slow/loaded to deserve
   any generic traffic at that price level.
2. The group total ``F(phi) = sum_i lambda_i(phi)`` is continuous and
   non-decreasing, so the multiplier matching the requested total is
   found with a second ``brentq`` on ``F(phi) - lambda'``.

Brent's method converges superlinearly, making this solver roughly an
order of magnitude faster than the plain nested bisection at equal
tolerance — quantified in ``benchmarks/bench_ablation_solvers.py``.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import brentq

from .bisection import settle_residual
from .exceptions import ConvergenceError, ParameterError
from .objective import marginal_cost
from .response import Discipline
from .result import LoadDistributionResult
from .server import BladeServerGroup

__all__ = ["solve_kkt", "rate_for_multiplier"]

_STABILITY_MARGIN = 1e-13
_XTOL = 1e-14
_MAX_DOUBLINGS = 4000


def rate_for_multiplier(
    m: int,
    xbar: float,
    special_rate: float,
    total_rate: float,
    phi: float,
    discipline: Discipline | str = Discipline.FCFS,
) -> float:
    """Optimal generic rate of a single server at multiplier ``phi``.

    Returns the root of ``marginal_cost(lambda) = phi`` on the server's
    stability interval, or its boundary values when the root falls
    outside (0 below, just-under-capacity above).
    """
    cap = m / xbar - special_rate
    if cap <= 0.0:
        return 0.0
    hi = (1.0 - _STABILITY_MARGIN) * cap

    def f(lam: float) -> float:
        return marginal_cost(m, xbar, special_rate, lam, total_rate, discipline) - phi

    f0 = f(0.0)
    if f0 >= 0.0:
        return 0.0
    fhi = f(hi)
    if fhi < 0.0:
        return hi
    return float(brentq(f, 0.0, hi, xtol=_XTOL, rtol=8.9e-16))


def _equalizing_repair(rates_for, phi, rates, resid, total_rate):
    """Budget repair that preserves marginal-cost equalization.

    A server whose marginal-cost curve is numerically flat near its
    optimum makes the group total ``F(phi)`` jump across a multiplier
    window narrower than any practical ``xtol``: the outer root-finder
    then terminates on one side of the jump with a macroscopic budget
    residual.  Rescaling every rate proportionally would close the
    budget but misprice the *steep* servers (their marginals move).
    Instead, bracket the jump down to float resolution and interpolate
    the two endpoint rate vectors component-wise — only the flat
    servers, whose marginals are insensitive by construction, absorb
    the correction, so the KKT equal-marginal property survives.
    """
    # Find the other side of the jump by geometric phi stepping.
    direction = -1.0 if resid > 0.0 else 1.0
    step = max(abs(phi) * 1e-15, 1e-300)
    a, ra, ea = phi, rates, resid
    b, rb, eb = phi, rates, resid
    for _ in range(200):
        b = a + direction * step
        rb = rates_for(b)
        eb = float(rb.sum()) - total_rate
        if eb == 0.0:
            return rb
        if (eb > 0.0) != (ea > 0.0):
            break
        step *= 2.0
    else:  # pragma: no cover - excess is monotone, a bracket must exist
        return rates
    # Shrink the bracket until phi hits float resolution.
    for _ in range(200):
        mid = 0.5 * (a + b)
        if mid == a or mid == b:
            break
        rm = rates_for(mid)
        em = float(rm.sum()) - total_rate
        if em == 0.0:
            return rm
        if (em > 0.0) == (ea > 0.0):
            a, ra, ea = mid, rm, em
        else:
            b, rb, eb = mid, rm, em
    # ea and eb have opposite signs, so t lies in [0, 1] and the
    # interpolated vector meets the budget exactly (up to roundoff).
    t = ea / (ea - eb)
    return ra + t * (rb - ra)


def solve_kkt(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
    xtol: float = 1e-13,
) -> LoadDistributionResult:
    """Optimal load distribution via nested Brent root-finding.

    Parameters mirror :func:`repro.core.bisection.calculate_t_prime`;
    results agree with it (and with SLSQP) to the solver tolerance,
    which the integration tests assert.
    """
    disc = Discipline.coerce(discipline)
    group.check_feasible(total_rate)
    if xtol <= 0.0:
        raise ParameterError(f"xtol must be > 0, got {xtol}")
    ms = group.sizes
    xbars = group.xbars
    specials = group.special_rates
    n = group.n

    def rates_for(phi: float) -> np.ndarray:
        return np.array(
            [
                rate_for_multiplier(
                    int(ms[i]),
                    float(xbars[i]),
                    float(specials[i]),
                    total_rate,
                    phi,
                    disc,
                )
                for i in range(n)
            ]
        )

    def excess(phi: float) -> float:
        return float(rates_for(phi).sum()) - total_rate

    # Lower bracket: the smallest marginal-at-zero over the group is a
    # multiplier at which *no* server accepts load, so excess < 0 there.
    phi_lo = min(
        marginal_cost(
            int(ms[i]), float(xbars[i]), float(specials[i]), 0.0, total_rate, disc
        )
        for i in range(n)
    )
    phi_hi = max(phi_lo, 1e-9)
    iterations = 0
    for _ in range(_MAX_DOUBLINGS):
        iterations += 1
        if excess(phi_hi) >= 0.0:
            break
        phi_hi *= 2.0
    else:
        raise ConvergenceError("solve_kkt could not bracket the multiplier")

    phi, outer = brentq(
        excess,
        phi_lo * (1.0 - 1e-12),
        phi_hi,
        xtol=xtol,
        rtol=8.9e-16,
        full_output=True,
    )
    phi = float(phi)
    # Doubling steps alone underreport the outer work by an order of
    # magnitude; the Brent iterations are where the multiplier search
    # actually converges, so they belong in the reported count (and in
    # the repro_solve_iterations histogram fed from it).
    iterations += int(outer.iterations)
    rates = rates_for(phi)
    resid = float(rates.sum()) - total_rate
    if abs(resid) > 1e-11 * max(total_rate, 1.0):
        # Macroscopic residual: a numerically flat marginal made F(phi)
        # jump across the root.  The repair interpolates the bracket
        # endpoint vectors component-wise and meets the budget to
        # roundoff while preserving marginal equalization — rescaling it
        # afterwards would re-misprice exactly the steep servers the
        # repair protected, so the repaired vector is returned as is.
        rates = _equalizing_repair(rates_for, phi, rates, resid, total_rate)
    else:
        # Close the epsilon budget slack.  The proportional rescale is
        # kept bit-exact with the historical behaviour whenever it is
        # safe — downstream optimizers (the DVFS outer loop in power.py
        # runs SLSQP at ftol = 1e-10) differentiate this output and are
        # sensitive to last-ulp arithmetic differences — and only when
        # it would push a cap-pinned server past (1 - margin) * cap
        # does the cap-respecting projection take over.
        s = float(rates.sum())
        if s > 0.0:
            hard_caps = (1.0 - _STABILITY_MARGIN) * group.spare_capacities
            scaled = rates * (total_rate / s)
            if np.all(scaled <= hard_caps):
                rates = scaled
            else:
                rates = settle_residual(rates, total_rate, hard_caps)
    return LoadDistributionResult(
        generic_rates=rates,
        mean_response_time=group.mean_response_time(rates, disc),
        phi=phi,
        discipline=disc,
        method="kkt-brentq",
        utilizations=group.utilizations(rates),
        per_server_response_times=group.per_server_response_times(rates, disc),
        iterations=iterations,
        converged=True,
    )
