"""Admission control and profit optimization on top of the optimal split.

The paper's introduction frames load distribution as "a source of
revenue... directly related to service quality (e.g., task response
time)" but optimizes response time only.  This module closes that loop
with the standard pricing treatment (cf. the author's later
profit-maximization line of work):

* each completed generic task earns revenue that *decays with the
  response time* it experienced (:class:`LinearDecayRevenue`: full
  price below a free threshold, linearly to zero at a deadline);
* the fleet costs money per unit time (e.g. power: ``Σ m_i s_i^alpha``
  times an energy price);
* the provider chooses how much generic traffic to *admit*: accepted
  load earns revenue but degrades everyone's response time.

Profit rate at admitted rate ``lambda'``:

.. math::

    \\Pi(\\lambda') = \\lambda' \\cdot r(T'^*(\\lambda')) - c

where ``T'*`` is the *optimized* mean response time at that load.  As
``lambda' → lambda'_max``, ``T'* → ∞`` and revenue per task collapses,
so an interior profit maximizer exists whenever operating is profitable
at all.  The maximizer is located with a bounded golden-section/Brent
search (scipy ``minimize_scalar``) over a bracketed grid refinement,
robust to the mild non-concavity the decay floor can introduce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

import numpy as np
from scipy.optimize import minimize_scalar

from .exceptions import ParameterError
from .response import Discipline
from .result import LoadDistributionResult
from .server import BladeServerGroup
from .solvers import dispatch

__all__ = [
    "RevenueModel",
    "LinearDecayRevenue",
    "AdmissionResult",
    "optimize_admission",
    "profit_rate",
]


class RevenueModel(Protocol):
    """Maps a mean response time to revenue per completed task."""

    def per_task(self, response_time: float) -> float:
        """Revenue earned by one task at the given mean response time."""
        ...


@dataclass(frozen=True)
class LinearDecayRevenue:
    """Full price up to ``free_threshold``, linear to zero at ``deadline``.

    Parameters
    ----------
    price:
        Revenue per task when service is fast (``> 0``).
    free_threshold:
        Response time below which the full price is earned (``>= 0``).
    deadline:
        Response time at which revenue reaches zero
        (``> free_threshold``); slower service earns nothing (the model
        never goes negative — refunds beyond price are out of scope).
    """

    price: float
    free_threshold: float
    deadline: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.price) and self.price > 0.0):
            raise ParameterError(f"price must be > 0, got {self.price!r}")
        if not (math.isfinite(self.free_threshold) and self.free_threshold >= 0.0):
            raise ParameterError(
                f"free_threshold must be >= 0, got {self.free_threshold!r}"
            )
        if not (
            math.isfinite(self.deadline) and self.deadline > self.free_threshold
        ):
            raise ParameterError(
                f"deadline must exceed free_threshold, got "
                f"{self.deadline!r} <= {self.free_threshold!r}"
            )

    def per_task(self, response_time: float) -> float:
        if response_time <= self.free_threshold:
            return self.price
        if response_time >= self.deadline:
            return 0.0
        frac = (self.deadline - response_time) / (
            self.deadline - self.free_threshold
        )
        return self.price * frac


@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of the profit-maximizing admission decision."""

    #: Admitted generic rate (0 means "do not sell generic capacity").
    admitted_rate: float
    #: Profit per unit time at the optimum (can be negative only when
    #: even shutting generic service off cannot avoid the fixed cost).
    profit: float
    #: Revenue per task at the optimum's mean response time.
    revenue_per_task: float
    #: The inner load-distribution result (None when nothing admitted).
    distribution: LoadDistributionResult | None
    #: Fraction of the saturation point used.
    load_fraction: float


def profit_rate(
    group: BladeServerGroup,
    admitted_rate: float,
    revenue: RevenueModel,
    cost_per_time: float,
    discipline: Discipline | str = Discipline.FCFS,
    method: str = "kkt",
) -> float:
    """Profit per unit time at a specific admitted rate."""
    if admitted_rate < 0.0:
        raise ParameterError(f"admitted_rate must be >= 0, got {admitted_rate}")
    if admitted_rate == 0.0:
        return -cost_per_time
    res = dispatch(group, admitted_rate, discipline, method)
    return (
        admitted_rate * revenue.per_task(res.mean_response_time)
        - cost_per_time
    )


def optimize_admission(
    group: BladeServerGroup,
    revenue: RevenueModel,
    cost_per_time: float = 0.0,
    discipline: Discipline | str = Discipline.FCFS,
    method: str = "kkt",
    grid_points: int = 24,
) -> AdmissionResult:
    """Choose the profit-maximizing admitted generic rate.

    Strategy: evaluate profit on a coarse grid over
    ``(0, 0.999 lambda'_max)`` to bracket the best region (robust to
    the kinks a revenue floor introduces), then polish with a bounded
    Brent search around the best grid cell.  Compares the result
    against admitting nothing.

    Parameters
    ----------
    cost_per_time:
        Fixed operating cost per unit time (>= 0); subtracted from the
        revenue stream regardless of admission.
    grid_points:
        Coarse-grid resolution (>= 4).
    """
    if cost_per_time < 0.0:
        raise ParameterError(
            f"cost_per_time must be >= 0, got {cost_per_time}"
        )
    if grid_points < 4:
        raise ParameterError(f"grid_points must be >= 4, got {grid_points}")
    disc = Discipline.coerce(discipline)
    cap = group.max_generic_rate

    def neg_profit(lam: float) -> float:
        return -profit_rate(group, lam, revenue, cost_per_time, disc, method)

    grid = np.linspace(cap * 1e-4, cap * 0.999, grid_points)
    values = np.array([neg_profit(float(g)) for g in grid])
    best = int(np.argmin(values))
    lo = grid[max(best - 1, 0)]
    hi = grid[min(best + 1, grid_points - 1)]
    opt = minimize_scalar(
        neg_profit, bounds=(float(lo), float(hi)), method="bounded",
        options={"xatol": 1e-8 * cap},
    )
    lam_star = float(opt.x)
    profit_star = -float(opt.fun)

    if profit_star <= -cost_per_time:
        # Selling generic capacity never beats not selling it.
        return AdmissionResult(
            admitted_rate=0.0,
            profit=-cost_per_time,
            revenue_per_task=0.0,
            distribution=None,
            load_fraction=0.0,
        )
    dist = dispatch(group, lam_star, disc, method)
    return AdmissionResult(
        admitted_rate=lam_star,
        profit=profit_star,
        revenue_per_task=revenue.per_task(dist.mean_response_time),
        distribution=dist,
        load_fraction=lam_star / cap,
    )
