"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish the failure modes that matter for a
load-distribution workflow: invalid model parameters, queueing saturation,
infeasible optimization instances, and solver non-convergence.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "SaturationError",
    "InfeasibleError",
    "ConvergenceError",
    "SimulationError",
    "ClusterDownError",
    "SolverTimeoutError",
    "RecoveryError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """A model parameter is outside its valid domain.

    Raised for non-positive server sizes or speeds, negative arrival
    rates, non-positive mean execution requirements, and similar
    violations detected during model construction or evaluation.
    """


class SaturationError(ReproError, ValueError):
    """A queueing station is at or beyond its stability boundary.

    An M/M/m station is stable only when the utilization
    ``rho = lambda * xbar / m`` is strictly below one.  Evaluating
    steady-state metrics at ``rho >= 1`` is meaningless (the waiting
    queue grows without bound), so the library refuses and raises this
    error instead of returning infinities.
    """

    def __init__(self, message: str, *, rho: float | None = None) -> None:
        super().__init__(message)
        #: The offending utilization, when known.
        self.rho = rho


class InfeasibleError(ReproError, ValueError):
    """The optimization instance admits no feasible load distribution.

    Raised when the requested total generic arrival rate ``lambda'``
    meets or exceeds the aggregate spare capacity
    ``sum_i (m_i / xbar_i - lambda''_i)`` of the server group.
    """

    def __init__(
        self,
        message: str,
        *,
        total_rate: float | None = None,
        capacity: float | None = None,
    ) -> None:
        super().__init__(message)
        #: The requested total generic arrival rate.
        self.total_rate = total_rate
        #: The aggregate spare capacity of the group.
        self.capacity = capacity


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to reach its tolerance.

    Carries the best iterate found so far (when available) so callers
    can inspect how close the solver got before giving up.
    """

    def __init__(self, message: str, *, best: object | None = None) -> None:
        super().__init__(message)
        #: Best iterate produced before the failure, if any.
        self.best = best


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class ClusterDownError(ReproError, RuntimeError):
    """Every server in the group is marked down.

    There is no active subgroup to optimize over and no destination to
    route to; the only safe control action is to shed all generic load
    until at least one server recovers.  Distinct from
    :class:`ParameterError` so a resilience layer can recognize a dark
    cluster and degrade deliberately instead of treating it as a caller
    bug.
    """

    def __init__(self, message: str, *, n_servers: int | None = None) -> None:
        super().__init__(message)
        #: Size of the (fully down) group, when known.
        self.n_servers = n_servers


class RecoveryError(ReproError, RuntimeError):
    """Durable control-plane state could not be restored.

    Raised when no usable checkpoint exists in a recovery directory,
    when a checkpoint was written by an incompatible schema version, or
    when the persisted topology/configuration contradicts what the
    caller asked to restore.  A *torn* journal tail or a corrupt latest
    checkpoint generation is **not** an error — recovery falls back to
    the last valid record / previous generation silently and reports it
    in the :class:`~repro.recovery.resume.RestoreReport`.
    """

    def __init__(self, message: str, *, path: str | None = None) -> None:
        super().__init__(message)
        #: Filesystem path implicated in the failure, when known.
        self.path = path


class SolverTimeoutError(ConvergenceError):
    """A solver invocation exceeded its latency budget.

    From the control plane's perspective a solve that misses its
    deadline is indistinguishable from one that never converges: the
    decision point has passed.  Subclasses :class:`ConvergenceError` so
    generic solver-fault handling catches both; carries the observed
    (or injected) latency for incident records.
    """

    def __init__(self, message: str, *, latency: float | None = None) -> None:
        super().__init__(message)
        #: Seconds the solve took (or would have taken), when known.
        self.latency = latency
