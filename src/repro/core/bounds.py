"""Cheap bounds that sandwich the optimal mean response time.

Solving the optimization takes root-finding; these bounds take one
Erlang-C evaluation each and are useful for back-of-envelope sizing,
for sanity-checking solver output, and as optimality certificates in
tests (`lower <= T'* <= upper` is asserted across random instances):

:func:`upper_bound`
    **Constructive**: the analytic ``T'`` of the spare-capacity-
    proportional split, which is feasible whenever the instance is.
    Any feasible point upper-bounds the minimum, and this particular
    heuristic tracks the optimum within a few percent (see the policy
    ablation), so the bound is tight in practice.

:func:`lower_bound`
    **Relaxation**: the better of two optimistic simplifications —

    * a *relaxed, perfectly pooled* fleet: delete all special tasks
      (pinned competitors can only hurt generic tasks), upgrade every
      blade to the fastest speed in the group (can only help), and pool
      everything into one M/M/(Σm_i) station (one shared queue beats
      any static split of a Poisson stream).  Each relaxation step
      weakly lowers the optimal generic response time, so the pooled
      value is a valid lower bound;
    * the bare service floor ``r̄ / s_max`` (no queueing at all).
"""

from __future__ import annotations

from ..core.mmm import MMmQueue
from .response import Discipline
from .server import BladeServerGroup

__all__ = ["lower_bound", "upper_bound", "bound_gap"]


def upper_bound(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
) -> float:
    """Constructive upper bound: T' of the spare-proportional split."""
    group.check_feasible(total_rate)
    caps = group.spare_capacities
    rates = caps / caps.sum() * total_rate
    return group.mean_response_time(rates, discipline)


def lower_bound(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
) -> float:
    """Optimistic lower bound via relaxation + pooling.

    Valid for both disciplines: deleting specials helps generic tasks
    under FCFS (less contention) and a fortiori under priority (the
    competitors that used to overtake are gone), and the pooled
    uniform-speed station dominates every feasible static arrangement
    of the relaxed fleet.
    """
    group.check_feasible(total_rate)
    s_max = float(group.speeds.max())
    xbar = group.rbar / s_max
    m_total = group.total_blades
    service_floor = xbar
    if total_rate * xbar / m_total >= 1.0:
        # Even the relaxed pooled fleet would saturate on the generic
        # load alone; the service floor is all that remains.
        return service_floor
    pooled = MMmQueue(m_total, xbar, total_rate).response_time
    return max(pooled, service_floor)


def bound_gap(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
) -> float:
    """Relative width ``(upper - lower) / lower`` of the sandwich."""
    lo = lower_bound(group, total_rate, discipline)
    hi = upper_bound(group, total_rate, discipline)
    return (hi - lo) / lo
