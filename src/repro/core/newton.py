"""Damped-Newton dual-ascent solver backend.

Every earlier backend reaches the paper's water-filling optimum by
derivative-free root-finding: nested bisection (`core/bisection.py`,
`core/vectorized.py`) or Brent's method (`core/kkt.py`).  Yet the
optimum is a KKT point of a smooth convex program whose marginals are
fully analytic (`core/objective.py`), so both root-finding levels admit
second-order steps:

Inner problem (per server, at multiplier ``phi``)
    ``lambda'_i(phi)`` solves ``g_i(lambda) = phi`` where
    ``g_i(lambda) = (T'_i + rho'_i dT'_i/drho) / lambda'`` is the
    strictly increasing marginal cost.  Its analytic slope is

    .. math::

        g_i'(\\lambda) = \\frac{\\bar{x}_i}{m_i \\lambda'}
            \\left(2 \\frac{\\partial T'_i}{\\partial \\rho}
            + \\rho'_i \\frac{\\partial^2 T'_i}{\\partial \\rho^2}\\right)

    with the second derivative from
    :func:`repro.core.response.d2_generic_response_time_drho2`.  All
    ``n`` inner Newton iterates advance together as arrays (one batched
    kernel evaluation per sweep, reusing the `core/vectorized.py`
    machinery), each safeguarded by a per-server bracket: a step
    leaving its bracket falls back to the bracket midpoint, so progress
    is never worse than bisection while quadratic convergence holds
    near the root.

Outer problem (the dual multiplier)
    ``F(phi) = sum_i lambda'_i(phi)`` is continuous and non-decreasing;
    the budget equation ``F(phi) = lambda'`` is solved by Newton steps
    on ``phi`` using the analytic dual slope

    .. math::

        F'(\\phi) = \\sum_{i \\in \\text{free}} \\frac{1}{g_i'(\\lambda'_i(\\phi))}

    (parked and capacity-pinned servers contribute zero).  The step is
    safeguarded by the running ``(phi_lo, phi_hi)`` bracket; warm
    starts (``phi_hint`` from a neighbouring sweep point or the
    previous controller tick) typically land inside the quadratic basin
    and converge in a handful of outer iterations.

Both safeguards make the method exactly as robust as the bisection
backends — including the degenerate flat-marginal case, where ``F``
jumps across the root inside a multiplier window narrower than float
resolution and the endpoint rate vectors are interpolated
component-wise (the same repair the KKT backend applies).

Registered as ``method="newton"`` (warm-startable); the measured
speedups over the other backends are committed in
``BENCH_solver_scaling.json`` at the repo root.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import gammaln

from .bisection import DEFAULT_TOL, STABILITY_MARGIN, settle_residual
from .exceptions import ConvergenceError, ParameterError
from .response import Discipline
from .result import LoadDistributionResult
from .server import BladeServerGroup
from .vectorized import (
    _d_response_drho_vec,
    _dp_zero_drho_vec,
    _waiting_factor_from_p0,
    p_zero_vec,
)

__all__ = ["solve_newton", "marginal_cost_and_slope_vec"]

#: Inner Newton sweeps per outer iteration before declaring failure.
#: Safeguarded steps halve a bracket at worst, so ~60 sweeps resolve
#: any double-precision interval; Newton itself needs far fewer.
_MAX_INNER_SWEEPS = 120

#: Outer multiplier iterations before declaring failure.
_MAX_OUTER = 200


def _d2p_zero_drho2_vec(
    ms: np.ndarray, rhos: np.ndarray, p0: np.ndarray
) -> np.ndarray:
    """Batched :func:`repro.core.erlang.d2p_zero_drho2` (given ``p_0``).

    Mirrors the scalar code: the head sums of ``S'`` and ``S''`` run as
    shared-axis term recurrences with per-server stop masks, the tails
    are evaluated in log space, and ``m = 1`` (where ``p_0`` is linear
    in ``rho``) is exactly zero.
    """
    mf = ms.astype(float)
    a = mf * rhos
    # S' head: sum_{k=1}^{m-1} m^k rho^{k-1}/(k-1)!  (k = 1 term is m).
    s1 = np.where(ms >= 2, mf, 0.0)
    u = mf.copy()
    for k in range(2, int(ms.max())):
        growing = ms > k
        np.multiply(u, a / (k - 1), out=u, where=growing)
        s1[growing] += u[growing]
    # S'' head: sum_{k=2}^{m-1} m^k rho^{k-2}/(k-2)!  (k = 2 term m^2).
    s2 = np.where(ms >= 3, mf * mf, 0.0)
    v = mf * mf
    for k in range(3, int(ms.max())):
        growing = ms > k
        np.multiply(v, a / (k - 2), out=v, where=growing)
        s2[growing] += v[growing]
    tail1 = np.zeros_like(rhos)
    tail2 = np.zeros_like(rhos)
    sel = (rhos > 0.0) & (ms >= 2)
    if sel.any():
        m = mf[sel]
        r = rhos[sel]
        c = np.exp(m * np.log(m) - gammaln(m + 1.0))
        lead = m - (m - 1.0) * r
        tail1[sel] = c * r ** (ms[sel] - 1) * lead / (1.0 - r) ** 2
        tail2[sel] = c * (
            m * (m - 1.0) * r ** (ms[sel] - 2) / (1.0 - r)
            + 2.0 * r ** (ms[sel] - 1) * lead / (1.0 - r) ** 3
        )
    at_zero = (rhos == 0.0) & (ms == 2)
    if at_zero.any():
        # rho -> 0 limit of the S'' tail: c * m (m-1), nonzero only at
        # m = 2 (every other term carries a positive power of rho).
        m = mf[at_zero]
        tail2[at_zero] = np.exp(m * np.log(m) - gammaln(m + 1.0)) * m * (m - 1.0)
    sp = s1 + tail1
    spp = s2 + tail2
    out = p0 * p0 * (2.0 * p0 * sp * sp - spp)
    out[ms == 1] = 0.0
    return out


def _d2_response_drho2_vec(
    ms: np.ndarray,
    xbars: np.ndarray,
    rhos: np.ndarray,
    rho_specials: np.ndarray,
    disc: Discipline,
    p0: np.ndarray,
) -> np.ndarray:
    """Batched :func:`repro.core.response.d2_generic_response_time_drho2`."""
    out = np.zeros_like(rhos)
    m1 = ms == 1
    if m1.any():
        out[m1] = 2.0 * xbars[m1] / (1.0 - rhos[m1]) ** 3
    sel = ~m1 & (rhos > 0.0)
    if sel.any():
        mi = ms[sel]
        m = mi.astype(float)
        r = rhos[sel]
        c = np.exp((m - 1.0) * np.log(m) - gammaln(m + 1.0))
        p0s = p0[sel]
        dp0 = _dp_zero_drho_vec(mi, r, p0s)
        d2p0 = _d2p_zero_drho2_vec(mi, r, p0s)
        one = 1.0 - r
        lead = m - (m - 2.0) * r
        h = r**mi / one**2
        dh = r ** (mi - 1) * lead / one**3
        d2h = (
            r ** (mi - 2) * ((m - 1.0) * lead - (m - 2.0) * r) / one**3
            + 3.0 * r ** (mi - 1) * lead / one**4
        )
        out[sel] = xbars[sel] * c * (d2p0 * h + 2.0 * dp0 * dh + p0s * d2h)
    at_zero = ~m1 & (rhos == 0.0) & (ms == 2)
    if at_zero.any():
        # h''(0) = 2 at m = 2 with C = 2^1/2! = 1; zero for m >= 3.
        out[at_zero] = 2.0 * xbars[at_zero]
    if disc is Discipline.PRIORITY:
        out /= 1.0 - rho_specials
    return out


def marginal_cost_and_slope_vec(
    ms: np.ndarray,
    xbars: np.ndarray,
    specials: np.ndarray,
    lams: np.ndarray,
    total_rate: float,
    disc: Discipline,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched marginal costs ``g_i`` and their slopes ``g_i'``.

    One shared :func:`~repro.core.vectorized.p_zero_vec` evaluation
    feeds the response time, both response-time derivatives, and hence
    both outputs:

    * ``g_i = (T'_i + rho'_i dT'_i/drho) / lambda'`` — identical to
      :func:`~repro.core.vectorized.marginal_cost_vec`;
    * ``g_i' = (xbar_i/m_i) (2 dT'_i/drho + rho'_i d2T'_i/drho2)
      / lambda'`` — strictly positive on the stability region (``T'``
      is increasing and convex in ``rho``), which is what makes both
      Newton levels well-posed.
    """
    mf = ms.astype(float)
    rho = (lams + specials) * xbars / mf
    rho_g = lams * xbars / mf
    rho_s = specials * xbars / mf
    p0 = p_zero_vec(ms, rho)
    w = _waiting_factor_from_p0(ms, rho, p0)
    if disc is Discipline.PRIORITY:
        w = w / (1.0 - rho_s)
    t = xbars * (1.0 + w)
    dt = _d_response_drho_vec(ms, xbars, rho, rho_s, disc, p0)
    d2t = _d2_response_drho2_vec(ms, xbars, rho, rho_s, disc, p0)
    g = (t + rho_g * dt) / total_rate
    dg = (xbars / mf) * (2.0 * dt + rho_g * d2t) / total_rate
    return g, dg


def _inner_newton(
    ms: np.ndarray,
    xbars: np.ndarray,
    specials: np.ndarray,
    total_rate: float,
    phi: float | np.ndarray,
    disc: Discipline,
    tol: float,
    x0: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Safeguarded batched Newton on ``g_i(lambda) = phi``.

    All servers advance together; per-server brackets ``[lb_i, ub_i]``
    are tightened by every evaluation and any Newton step leaving its
    bracket is replaced by the bracket midpoint.  Returns the roots,
    the slopes ``g_i'`` at the roots (the outer dual ascent needs
    ``sum 1/g'``), and the number of batched kernel sweeps.

    ``phi`` may be a scalar (one multiplier for every server — the flat
    solve) or a per-server vector: the sharded coordinator evaluates
    several shards' load responses at *different* multipliers in one
    batched sweep this way (see :mod:`repro.shard.coordinator`).
    """
    x = np.clip(x0, lb, ub)
    lb = lb.copy()
    ub = ub.copy()
    phis = np.broadcast_to(np.asarray(phi, dtype=float), x.shape)
    dg_out = np.full(x.shape, np.inf)
    # A server is frozen once its marginal residual reaches evaluation
    # noise (a couple of ulps of phi — bisection cannot refine past the
    # kernel's own roundoff) or its bracket collapses below tol.
    # Freezing matters for correctness, not just speed: a converged
    # server has xn == x on the bracket boundary, which the safeguard
    # would otherwise misread as a failed step and bisect *away* from
    # the root.  Each sweep then re-evaluates only the live subset, so
    # the batched kernel shrinks as servers converge.
    noise = 8.9e-16 * np.abs(phis)
    done = (ub - lb) <= tol
    sweeps = 0
    for _ in range(_MAX_INNER_SWEEPS):
        idx = np.flatnonzero(~done)
        if idx.size == 0:
            break
        sweeps += 1
        xs = x[idx]
        g, dg = marginal_cost_and_slope_vec(
            ms[idx], xbars[idx], specials[idx], xs, total_rate, disc
        )
        dg_out[idx] = dg
        resid = g - phis[idx]
        below = resid < 0.0
        lbs = np.where(below, xs, lb[idx])
        ubs = np.where(below, ub[idx], xs)
        frozen = (np.abs(resid) <= noise[idx]) | (ubs - lbs <= tol)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            xn = xs - resid / dg
        bad = ~np.isfinite(xn) | (xn <= lbs) | (xn >= ubs)
        xn = np.where(bad, 0.5 * (lbs + ubs), xn)
        x[idx] = np.where(frozen, xs, xn)
        lb[idx] = lbs
        ub[idx] = ubs
        done[idx] = frozen
    else:  # pragma: no cover - midpoint fallback halves every bracket
        raise ConvergenceError("newton inner iteration failed to converge")
    return np.clip(x, lb, ub), dg_out, sweeps


def solve_newton(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
    tol: float = DEFAULT_TOL,
    phi_hint: float | None = None,
) -> LoadDistributionResult:
    """Optimal load distribution via damped-Newton dual ascent.

    Drop-in replacement for the bisection/KKT backends (same optimum,
    agreement asserted to <= 1e-9 by the test suite); registered as
    ``method="newton"`` in the solver registry.

    Parameters
    ----------
    tol:
        Convergence tolerance on the per-server rates and (relative to
        the total) on the budget residual.
    phi_hint:
        Optional warm start for the dual multiplier, typically the
        converged ``phi`` of a neighbouring sweep point or the previous
        controller tick (see :func:`repro.api.solve_sweep`).  A hint
        outside the feasible multiplier band — per-shard hints carried
        across drifting shard loads land there routinely — is detected
        against the precomputed band and re-anchored to the cold-start
        seed, so a stale hint costs at most one extra batched
        evaluation, never a safeguarded re-bracketing walk.
    """
    disc = Discipline.coerce(discipline)
    group.check_feasible(total_rate)
    if tol <= 0.0:
        raise ParameterError(f"tol must be > 0, got {tol}")
    ms = group.sizes.astype(np.int64)
    xbars = group.xbars.astype(float)
    specials = group.special_rates.astype(float)
    n = ms.shape[0]
    caps = group.spare_capacities
    hard_caps = np.where(caps > 0.0, (1.0 - STABILITY_MARGIN) * caps, 0.0)
    zeros = np.zeros(n)

    # Both thresholds below are phi-independent, so one batched kernel
    # evaluation each covers every outer iteration:
    #   g0   — marginal at zero load; phi <= g0 parks the server,
    #   gcap — marginal at the stability boundary; phi > gcap pins it.
    g0, _ = marginal_cost_and_slope_vec(ms, xbars, specials, zeros, total_rate, disc)
    gcap, _ = marginal_cost_and_slope_vec(
        ms, xbars, specials, hard_caps, total_rate, disc
    )

    budget_tol = tol * max(1.0, total_rate)
    inner_sweeps = 0
    prev_rates = total_rate * np.divide(
        caps, caps.sum(), out=np.zeros(n), where=caps.sum() > 0.0
    )

    def rates_at(
        phi: float, lo: np.ndarray, hi: np.ndarray
    ) -> tuple[np.ndarray, float, np.ndarray]:
        """``(rates, F'(phi), rates)`` at multiplier ``phi``.

        ``lo``/``hi`` are component-wise root bounds carried over from
        rate vectors already computed at smaller/larger multipliers
        (``lambda'_i(phi)`` is non-decreasing in ``phi``).
        """
        nonlocal inner_sweeps, prev_rates
        active = (caps > 0.0) & (g0 < phi)
        if not active.any():
            return zeros.copy(), 0.0, zeros.copy()
        pinned = active & (gcap < phi)
        free = active & ~pinned
        rates = np.where(pinned, hard_caps, 0.0)
        if free.any():
            # Pad carried-over bounds by tol (the accuracy of the rates
            # they came from), exactly as find_lambda_batched does.
            lb = np.clip(np.where(free, lo - tol, 0.0), 0.0, hard_caps)
            ub = np.where(free, np.minimum(hi + tol, hard_caps), 0.0)
            lb = np.minimum(lb, ub)
            x0 = np.where(free, prev_rates, 0.0)
            roots, dg, sweeps = _inner_newton(
                ms, xbars, specials, total_rate, phi, disc, tol, x0, lb, ub
            )
            inner_sweeps += sweeps
            rates = np.where(free, roots, rates)
            with np.errstate(divide="ignore"):
                fprime = float(np.where(free, 1.0 / dg, 0.0).sum())
        else:
            fprime = 0.0
        prev_rates = rates
        return rates, fprime, rates

    # The zero-load and capacity marginals bound the multiplier a
    # priori: F(phi) = 0 for phi <= min g0 (everything parked) and
    # F(phi) = sum hard_caps for phi > max gcap (everything pinned), so
    # the root lives inside the *finite* bracket (phi_floor, phi_ceil].
    # Seeding the outer safeguard with that bracket — instead of
    # (0, inf) — means a warm ``phi_hint`` that drifted outside the
    # feasible band (per-shard hints across drifting shard loads do
    # this routinely) is clamped and re-bracketed in O(1) instead of
    # spending safeguarded outer iterations walking back inside.
    live = caps > 0.0
    phi_floor = float(g0[live].min())
    phi_ceil = float(np.nextafter(gcap[live].max(), math.inf))
    phi_seed = float(np.nextafter(phi_floor, math.inf))

    # Cold start: a capacity-proportional split is feasible, and the
    # median of its marginals prices the middle of the group; an
    # *in-band* phi_hint replaces it and usually lands in the quadratic
    # basin.  A hint outside the band carries no information beyond the
    # bound it violated, and starting at the violated edge is a trap:
    # gcap diverges as 1/STABILITY_MARGIN at the stability boundary, so
    # a ceiling start degenerates into bisection across ~12 decades.
    # Stale hints therefore re-anchor to the cold seed — one batched
    # kernel evaluation, mid-band by construction.
    if (
        phi_hint is not None
        and math.isfinite(phi_hint)
        and phi_seed <= phi_hint <= phi_ceil
    ):
        phi = float(phi_hint)
    else:
        g_start, _ = marginal_cost_and_slope_vec(
            ms, xbars, specials, prev_rates, total_rate, disc
        )
        phi = min(max(float(np.median(g_start[live])), phi_seed), phi_ceil)

    phi_lo = phi_floor
    phi_hi = phi_ceil
    r_lo = zeros.copy()
    r_hi = hard_caps.copy()
    f_lo = 0.0 - total_rate
    f_hi = float(hard_caps.sum()) - total_rate
    rates = prev_rates
    iterations = 0
    converged = False
    for _ in range(_MAX_OUTER):
        iterations += 1
        rates, fprime, _ = rates_at(phi, r_lo, r_hi)
        resid = float(rates.sum()) - total_rate
        if abs(resid) <= budget_tol:
            converged = True
            break
        if resid < 0.0:
            phi_lo, r_lo, f_lo = phi, rates, resid
        else:
            phi_hi, r_hi, f_hi = phi, rates, resid
        if phi_hi - phi_lo <= 1e-15 * max(phi_hi, 1.0):
            # Degenerate flat-marginal band: F(phi) jumps across the
            # budget inside a float-resolution multiplier window.  The
            # endpoint residuals straddle zero, so the component-wise
            # interpolation meets the budget to roundoff while only
            # moving the flat servers (same repair as the KKT backend).
            t = f_lo / (f_lo - f_hi)
            rates = r_lo + t * (r_hi - r_lo)
            phi = phi_lo + t * (phi_hi - phi_lo)
            converged = True
            break
        if fprime > 0.0 and math.isfinite(fprime):
            step = resid / fprime
            cand = phi - step
        else:
            cand = math.inf
        if not (math.isfinite(cand) and phi_lo < cand < phi_hi):
            # The bracket is finite from the start, so the safeguard is
            # always a bisection step — geometric when the bracket still
            # spans decades (marginals are positive but gcap diverges
            # with the stability margin, so the initial bracket can span
            # ~12 orders of magnitude; arithmetic halving would burn an
            # iteration per factor of two while the geometric step
            # halves the *exponent* range).
            if phi_lo > 0.0 and phi_hi > 100.0 * phi_lo:
                cand = math.sqrt(phi_lo * phi_hi)
            else:
                cand = 0.5 * (phi_lo + phi_hi)
        phi = float(cand)
    if not converged:
        raise ConvergenceError(
            f"solve_newton: no convergence in {_MAX_OUTER} outer iterations "
            f"(residual {resid:.3e})"
        )
    rates = settle_residual(rates, total_rate, hard_caps)
    return LoadDistributionResult(
        generic_rates=rates,
        mean_response_time=group.mean_response_time(rates, disc),
        phi=phi,
        discipline=disc,
        method="newton-dual-ascent",
        utilizations=group.utilizations(rates),
        per_server_response_times=group.per_server_response_times(rates, disc),
        iterations=iterations,
        converged=True,
        metadata={"inner_sweeps": inner_sweeps},
    )
