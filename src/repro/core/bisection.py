"""Faithful transcription of the paper's optimization algorithms.

The paper (Figs. 2 and 3) solves the Lagrange system with two nested
bisection searches:

``find_lambda_i`` (Fig. 2, ``Find_lambda'_i``)
    Given a candidate multiplier ``phi``, find the generic rate
    ``lambda'_i`` at which server ``i``'s marginal cost
    ``dT'/d lambda'_i`` equals ``phi``.  The marginal is increasing in
    ``lambda'_i`` (convexity of ``T'``), so the root is bracketed by
    doubling an upper bound — clipped below the saturation point
    ``m_i/xbar_i - lambda''_i`` exactly as in lines (6)–(7) — and then
    located by bisection.

``calculate_t_prime`` (Fig. 3, ``Calculate T'``)
    The per-server rates returned by ``find_lambda_i`` are increasing
    in ``phi``, so the group total ``F(phi) = sum_i lambda'_i(phi)`` is
    increasing too.  The outer loop doubles ``phi`` until
    ``F(phi) >= lambda'`` and bisects for the multiplier that makes the
    rates sum exactly to the requested total, then assembles the
    distribution and the minimized ``T'``.

The transcription preserves the paper's control flow (including the
doubling bracket and the epsilon-based termination) while replacing the
pseudo-code's "small value" seeds with documented defaults.  A
convexity subtlety the pseudo-code glosses over: when ``phi`` is below
the server's marginal cost at zero load, no root exists and the server
receives zero generic load (the water-filling case); ``find_lambda_i``
returns 0 there, which is also what the paper's bisection converges to
since its lower bound is pinned at 0.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from .exceptions import ConvergenceError, ParameterError
from .objective import marginal_cost
from .response import Discipline
from .result import LoadDistributionResult
from .server import BladeServerGroup

__all__ = [
    "find_lambda_i",
    "calculate_t_prime",
    "solve_bisection",
    "settle_residual",
]

#: Default interval-width tolerance (the paper's ``epsilon``).
DEFAULT_TOL = 1e-12

#: Default seed for the doubling brackets (the paper's "small value").
DEFAULT_SEED = 1e-9

#: Safety margin keeping the search strictly inside the stability region
#: (the paper's ``(1 - epsilon)`` clip in Fig. 2 line (7)).
STABILITY_MARGIN = 1e-12

#: Hard cap on doubling/bisection iterations; generous enough that hitting
#: it indicates a genuinely ill-posed instance rather than slow progress.
MAX_ITER = 20_000


def settle_residual(
    rates: np.ndarray, total_rate: float, caps: np.ndarray
) -> np.ndarray:
    """Rescale ``rates`` to sum to ``total_rate`` without breaching ``caps``.

    The paper's algorithm leaves an ``epsilon`` slack between
    ``sum_i lambda'_i`` and the requested total; the obvious fix —
    multiplying every rate by ``total_rate / sum``  — can push a server
    that the bisection already pinned at its stability cap *past* the
    cap, making the otherwise-feasible solution evaluate as saturated.
    This projection instead distributes the shortfall only across
    servers with headroom, clipping at ``caps``:

    * ``sum >= total_rate``: plain proportional scale-down (never
      violates a cap and preserves the historical behaviour).
    * ``sum < total_rate``: the shortfall is spread proportionally to
      the current rates of un-capped servers (matching the proportional
      rescale whenever no cap binds) and re-spread after each clipping
      event; at most ``n`` passes are needed since every pass either
      clears the shortfall or pins another server.

    When ``total_rate`` exceeds ``sum(caps)`` (possible only within the
    solver's own stability margin of the saturation point) the closest
    feasible vector — every server at its cap — is returned.
    """
    rates = np.minimum(np.asarray(rates, dtype=float), caps)
    s = float(rates.sum())
    if s <= 0.0:
        return rates
    if s >= total_rate:
        return rates * (total_rate / s)
    for _ in range(rates.size + 1):
        shortfall = total_rate - float(rates.sum())
        if shortfall <= 0.0:
            break
        headroom = caps - rates
        free = headroom > 0.0
        if not free.any():
            break
        weights = np.where(free, rates, 0.0)
        wsum = float(weights.sum())
        if wsum <= 0.0:
            # Only zero-rate servers have headroom left; spread by headroom.
            weights = np.where(free, headroom, 0.0)
            wsum = float(weights.sum())
        rates = np.minimum(rates + shortfall * (weights / wsum), caps)
    return rates


def _bracket_phi(
    sum_at: Callable[[float], float],
    total_rate: float,
    phi_hint: float | None,
) -> tuple[float, float, int]:
    """Bracket the outer multiplier: ``F(lb) < total_rate <= F(ub)``.

    Cold start reproduces the paper's Fig. 3 doubling from the seed,
    except that every ``phi`` proven too small is carried into ``lb``
    (the pseudo-code leaves ``lb = 0``, wasting roughly half of the
    subsequent bisection iterations re-deriving what the doubling
    already established).  With ``phi_hint`` — e.g. the converged
    multiplier of the previous point of a load sweep — the bracket
    grows (or shrinks) multiplicatively from the hint instead, which
    typically needs only a couple of ``F`` evaluations.

    Returns ``(lb, ub, evaluations)``.
    """
    if phi_hint is not None and math.isfinite(phi_hint) and phi_hint > 0.0:
        lb, ub, evals = 0.0, float(phi_hint), 0
        for _ in range(MAX_ITER):
            evals += 1
            if sum_at(ub) >= total_rate:
                break
            lb = ub
            ub *= 2.0
        else:  # pragma: no cover - defensive
            raise ConvergenceError("failed to bracket phi from the hint")
        if lb == 0.0:
            # The hint itself was already sufficient; probe downward so
            # the bisection starts from a tight two-sided bracket.
            lo = 0.5 * ub
            for _ in range(MAX_ITER):
                if lo <= DEFAULT_SEED:
                    break
                evals += 1
                if sum_at(lo) < total_rate:
                    lb = lo
                    break
                ub = lo
                lo *= 0.5
        return lb, ub, evals
    # Lines (1)-(10) of Fig. 3: double phi from the seed until F >= lambda'.
    lb, ub, evals = 0.0, DEFAULT_SEED, 0
    for _ in range(MAX_ITER):
        evals += 1
        ub *= 2.0
        if sum_at(ub) >= total_rate:
            break
        lb = ub
    else:  # pragma: no cover - defensive
        raise ConvergenceError("calculate_t_prime failed to bracket phi")
    return lb, ub, evals


def find_lambda_i(
    m: int,
    xbar: float,
    special_rate: float,
    total_rate: float,
    phi: float,
    discipline: Discipline | str = Discipline.FCFS,
    tol: float = DEFAULT_TOL,
) -> float:
    """Paper Fig. 2: the generic rate at which server ``i`` hits ``phi``.

    Parameters
    ----------
    m, xbar, special_rate:
        The server's size ``m_i``, mean service time ``xbar_i``, and
        special-task rate ``lambda''_i``.
    total_rate:
        The group total ``lambda'`` (enters the marginal through its
        ``1/lambda'`` prefactor).
    phi:
        Candidate Lagrange multiplier.
    discipline:
        Queueing discipline for special tasks.
    tol:
        Bisection interval tolerance (the paper's ``epsilon``).

    Returns
    -------
    float
        ``lambda'_i`` with marginal cost ``phi``, clipped to
        ``[0, (1 - eps)(m/xbar - lambda''))``.  Returns 0.0 when even an
        infinitesimal generic load costs more than ``phi``.
    """
    if tol <= 0.0:
        raise ParameterError(f"tol must be > 0, got {tol}")
    cap = m / xbar - special_rate
    if cap <= 0.0:
        return 0.0

    def g(lam: float) -> float:
        return marginal_cost(m, xbar, special_rate, lam, total_rate, discipline)

    # Water-filling guard: marginal at zero already exceeds phi.
    if g(0.0) >= phi:
        return 0.0

    # Lines (1)-(8): double ub until the marginal exceeds phi, clipping
    # at the stability boundary.  Each rejected ub is carried into lb:
    # ``g(ub) < phi`` proves the root lies above ub, so starting the
    # bisection from the last failing bound instead of 0 (as the
    # pseudo-code does) halves the iterations to a given tolerance.
    lb = 0.0
    ub = DEFAULT_SEED
    hard_cap = (1.0 - STABILITY_MARGIN) * cap
    for _ in range(MAX_ITER):
        if ub > hard_cap:
            ub = hard_cap
        if g(ub) >= phi:
            break
        if ub == hard_cap:
            # Even at the stability boundary the marginal stays below phi
            # (possible only with extremely large phi targets); the paper
            # clips here and the caller's outer bisection compensates.
            return hard_cap
        lb = ub
        ub *= 2.0
    else:  # pragma: no cover - defensive
        raise ConvergenceError("find_lambda_i failed to bracket the root")

    # Lines (9)-(18): plain bisection on [lb, ub].
    for _ in range(MAX_ITER):
        if ub - lb <= tol:
            break
        middle = 0.5 * (lb + ub)
        if g(middle) < phi:
            lb = middle
        else:
            ub = middle
    return 0.5 * (lb + ub)


def calculate_t_prime(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
    tol: float = DEFAULT_TOL,
    phi_hint: float | None = None,
) -> LoadDistributionResult:
    """Paper Fig. 3: the full nested-bisection optimizer.

    Finds the multiplier ``phi`` whose induced per-server rates sum to
    ``total_rate``, then evaluates the optimal distribution and the
    minimized mean response time ``T'``.

    Parameters
    ----------
    phi_hint:
        Optional warm start for the multiplier search (an extension
        beyond the paper): the bracket grows multiplicatively from the
        hint instead of doubling from the seed.  Load sweeps pass the
        previous point's converged ``phi`` here (see
        :func:`repro.workloads.sweeps.solve_sweep`).

    Raises
    ------
    InfeasibleError
        If ``total_rate`` is at or beyond the group saturation point.
    """
    disc = Discipline.coerce(discipline)
    group.check_feasible(total_rate)
    n = group.n
    ms = group.sizes
    xbars = group.xbars
    specials = group.special_rates

    def rates_for(phi: float) -> np.ndarray:
        return np.array(
            [
                find_lambda_i(
                    int(ms[i]),
                    float(xbars[i]),
                    float(specials[i]),
                    total_rate,
                    phi,
                    disc,
                    tol,
                )
                for i in range(n)
            ]
        )

    def sum_at(phi: float) -> float:
        return float(rates_for(phi).sum())

    # Lines (1)-(10): bracket phi — doubling from the seed (or growing
    # from the warm-start hint), carrying every proven-failing phi into
    # the lower bound.
    lb, ub, iterations = _bracket_phi(sum_at, total_rate, phi_hint)

    # Lines (11)-(27): bisect phi in [lb, ub].  The termination tolerance
    # is scaled by phi's magnitude so very flat or very steep instances
    # converge to the same relative accuracy.
    phi_tol = tol * max(1.0, ub)
    for _ in range(MAX_ITER):
        iterations += 1
        if ub - lb <= phi_tol:
            break
        middle = 0.5 * (lb + ub)
        if rates_for(middle).sum() < total_rate:
            lb = middle
        else:
            ub = middle
    phi = 0.5 * (lb + ub)

    # Lines (28)-(36): final rates and T'.  Settle the tiny residual so
    # the constraint holds exactly (the paper leaves an epsilon slack)
    # without pushing a cap-pinned server past its stability point.
    rates = rates_for(phi)
    if rates.sum() == 0.0:
        # The midpoint fell below every server's zero-load marginal
        # (possible at very small total rates, where the feasible phi
        # band is narrower than the bisection interval).  The loop
        # invariant guarantees F(ub) >= lambda' > 0, so evaluate there.
        phi = ub
        rates = rates_for(phi)
    hard_caps = (1.0 - STABILITY_MARGIN) * group.spare_capacities
    rates = settle_residual(rates, total_rate, hard_caps)
    t_prime = group.mean_response_time(rates, disc)
    return LoadDistributionResult(
        generic_rates=rates,
        mean_response_time=t_prime,
        phi=phi,
        discipline=disc,
        method="paper-bisection",
        utilizations=group.utilizations(rates),
        per_server_response_times=group.per_server_response_times(rates, disc),
        iterations=iterations,
        converged=True,
    )


def solve_bisection(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
    tol: float = DEFAULT_TOL,
    phi_hint: float | None = None,
) -> LoadDistributionResult:
    """Alias for :func:`calculate_t_prime` under the solver-naming scheme."""
    return calculate_t_prime(group, total_rate, discipline, tol, phi_hint)
