"""Blade-server and server-group models.

These are the domain objects of the paper: a *blade server* ``S_i`` is a
chassis of ``m_i`` identical blades of speed ``s_i``, preloaded with a
dedicated Poisson stream of special tasks at rate ``lambda''_i``; a
*group* is the ordered collection ``S_1 .. S_n`` across which generic
load is distributed.  The group also fixes the mean task execution
requirement ``rbar`` shared by all tasks, so a server's mean service
time is ``xbar_i = rbar / s_i``.

The group exposes the quantities the optimizer needs:

* per-server spare capacity ``m_i / xbar_i - lambda''_i`` (the
  saturation point of ``lambda'_i`` from the paper's Section 5),
* the aggregate saturation point ``lambda'_max``,
* evaluation of the group-level mean generic response time ``T'`` for
  an arbitrary distribution vector.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from .exceptions import InfeasibleError, ParameterError
from .response import Discipline, generic_response_time

__all__ = ["BladeServer", "BladeServerGroup"]


@dataclass(frozen=True)
class BladeServer:
    """A single heterogeneous blade server ``S_i``.

    Parameters
    ----------
    size:
        Number of identical server blades ``m_i`` (``>= 1``).
    speed:
        Execution speed ``s_i`` of each blade, in giga-instructions per
        second (``> 0``).
    special_rate:
        Arrival rate ``lambda''_i`` of the dedicated special-task
        stream (``>= 0``).
    name:
        Optional human-readable identifier used in reports.
    """

    size: int
    speed: float
    special_rate: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.size, (int, np.integer)) or isinstance(self.size, bool):
            raise ParameterError(f"size must be an int, got {self.size!r}")
        if self.size < 1:
            raise ParameterError(f"size must be >= 1, got {self.size}")
        if not (math.isfinite(self.speed) and self.speed > 0.0):
            raise ParameterError(f"speed must be finite and > 0, got {self.speed!r}")
        if not (math.isfinite(self.special_rate) and self.special_rate >= 0.0):
            raise ParameterError(
                f"special_rate must be finite and >= 0, got {self.special_rate!r}"
            )
        object.__setattr__(self, "size", int(self.size))

    def xbar(self, rbar: float) -> float:
        """Mean service time ``xbar = rbar / speed`` for requirement ``rbar``."""
        if not (math.isfinite(rbar) and rbar > 0.0):
            raise ParameterError(f"rbar must be finite and > 0, got {rbar!r}")
        return rbar / self.speed

    def service_capacity(self, rbar: float) -> float:
        """Total service rate ``m / xbar = m s / rbar`` of the server."""
        return self.size / self.xbar(rbar)

    def spare_capacity(self, rbar: float) -> float:
        """Saturation point of generic load: ``m/xbar - lambda''``.

        Any generic arrival rate at or above this value drives the
        server's utilization to one.
        """
        return self.service_capacity(rbar) - self.special_rate

    def special_utilization(self, rbar: float) -> float:
        """Utilization contributed by special tasks, ``rho'' = lambda'' xbar / m``."""
        return self.special_rate * self.xbar(rbar) / self.size


class BladeServerGroup:
    """An ordered group of heterogeneous blade servers sharing one workload.

    Parameters
    ----------
    servers:
        The blade servers ``S_1 .. S_n`` (at least one).
    rbar:
        Mean task execution requirement ``rbar`` in giga-instructions,
        shared by generic and special tasks (``> 0``).

    Raises
    ------
    ParameterError
        On empty groups, invalid ``rbar``, or a server whose special
        load alone saturates it (``rho''_i >= 1``).
    """

    def __init__(self, servers: Iterable[BladeServer], rbar: float = 1.0) -> None:
        self._servers: tuple[BladeServer, ...] = tuple(servers)
        if not self._servers:
            raise ParameterError("a BladeServerGroup needs at least one server")
        if not (math.isfinite(rbar) and rbar > 0.0):
            raise ParameterError(f"rbar must be finite and > 0, got {rbar!r}")
        self._rbar = float(rbar)
        for i, srv in enumerate(self._servers):
            if not isinstance(srv, BladeServer):
                raise ParameterError(
                    f"servers[{i}] must be a BladeServer, got {type(srv).__name__}"
                )
            if srv.special_utilization(self._rbar) >= 1.0:
                raise ParameterError(
                    f"server {i} ({srv.name or 'unnamed'}) is saturated by its "
                    f"special tasks alone: rho'' = "
                    f"{srv.special_utilization(self._rbar):.6g} >= 1"
                )

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        sizes: Sequence[int],
        speeds: Sequence[float],
        special_rates: Sequence[float] | None = None,
        rbar: float = 1.0,
    ) -> "BladeServerGroup":
        """Build a group from parallel parameter arrays.

        ``special_rates`` defaults to all-zero (no preloaded tasks).
        """
        sizes = list(sizes)
        speeds = list(speeds)
        if len(sizes) != len(speeds):
            raise ParameterError(
                f"sizes and speeds must have equal length, got "
                f"{len(sizes)} and {len(speeds)}"
            )
        if special_rates is None:
            special_rates = [0.0] * len(sizes)
        else:
            special_rates = list(special_rates)
            if len(special_rates) != len(sizes):
                raise ParameterError(
                    f"special_rates length {len(special_rates)} != n = {len(sizes)}"
                )
        servers = [
            BladeServer(int(m), float(s), float(l2), name=f"S{i+1}")
            for i, (m, s, l2) in enumerate(zip(sizes, speeds, special_rates))
        ]
        return cls(servers, rbar=rbar)

    @classmethod
    def with_special_fraction(
        cls,
        sizes: Sequence[int],
        speeds: Sequence[float],
        fraction: float = 0.3,
        rbar: float = 1.0,
    ) -> "BladeServerGroup":
        """Build a group preloaded to a fixed special-task utilization.

        Implements the paper's standard setup
        ``lambda''_i = y * m_i / xbar_i`` so that special tasks
        contribute exactly ``y`` (``fraction``) to every server's
        utilization.
        """
        if not (0.0 <= fraction < 1.0):
            raise ParameterError(f"fraction must be in [0, 1), got {fraction}")
        special = [
            fraction * int(m) * float(s) / rbar for m, s in zip(sizes, speeds)
        ]
        return cls.from_arrays(sizes, speeds, special, rbar=rbar)

    # -- container protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._servers)

    def __iter__(self) -> Iterator[BladeServer]:
        return iter(self._servers)

    def __getitem__(self, i: int) -> BladeServer:
        return self._servers[i]

    def __repr__(self) -> str:
        return (
            f"BladeServerGroup(n={len(self)}, rbar={self._rbar}, "
            f"total_blades={self.total_blades})"
        )

    # -- aggregate parameters ----------------------------------------------------

    @property
    def servers(self) -> tuple[BladeServer, ...]:
        """The servers of the group, in order."""
        return self._servers

    @property
    def rbar(self) -> float:
        """Mean task execution requirement shared by all tasks."""
        return self._rbar

    @property
    def n(self) -> int:
        """Number of blade servers in the group."""
        return len(self._servers)

    @property
    def sizes(self) -> np.ndarray:
        """Vector of server sizes ``m_i``."""
        return np.array([s.size for s in self._servers], dtype=np.int64)

    @property
    def speeds(self) -> np.ndarray:
        """Vector of blade speeds ``s_i``."""
        return np.array([s.speed for s in self._servers], dtype=float)

    @property
    def xbars(self) -> np.ndarray:
        """Vector of mean service times ``xbar_i = rbar / s_i``."""
        return self._rbar / self.speeds

    @property
    def special_rates(self) -> np.ndarray:
        """Vector of special-task arrival rates ``lambda''_i``."""
        return np.array([s.special_rate for s in self._servers], dtype=float)

    @property
    def special_utilizations(self) -> np.ndarray:
        """Vector of special-task utilizations ``rho''_i``."""
        return self.special_rates * self.xbars / self.sizes

    @property
    def total_blades(self) -> int:
        """Total number of blades ``m = sum m_i``."""
        return int(self.sizes.sum())

    @property
    def total_speed(self) -> float:
        """Aggregate processing speed ``sum m_i s_i``."""
        return float((self.sizes * self.speeds).sum())

    @property
    def spare_capacities(self) -> np.ndarray:
        """Per-server saturation points ``m_i/xbar_i - lambda''_i``."""
        return self.sizes / self.xbars - self.special_rates

    @property
    def max_generic_rate(self) -> float:
        """The group saturation point ``lambda'_max = sum spare capacities``."""
        return float(self.spare_capacities.sum())

    # -- evaluation ---------------------------------------------------------------

    def utilizations(self, generic_rates: Sequence[float]) -> np.ndarray:
        """Total utilizations ``rho_i`` for a generic-load vector."""
        rates = self._as_rates(generic_rates)
        return (rates + self.special_rates) * self.xbars / self.sizes

    def mean_response_time(
        self,
        generic_rates: Sequence[float],
        discipline: Discipline | str = Discipline.FCFS,
    ) -> float:
        """Group-level mean generic response time ``T'``.

        .. math::

            T' = \\sum_i \\frac{\\lambda'_i}{\\lambda'} T'_i(\\lambda'_i)

        Servers receiving zero generic load contribute nothing (their
        weight is zero), which matches the paper's convention.
        """
        rates = self._as_rates(generic_rates)
        total = float(rates.sum())
        if total <= 0.0:
            raise ParameterError("total generic rate must be positive")
        t = 0.0
        for i, srv in enumerate(self._servers):
            if rates[i] == 0.0:
                continue
            t += (
                rates[i]
                / total
                * generic_response_time(
                    srv.size,
                    srv.xbar(self._rbar),
                    float(rates[i]),
                    srv.special_rate,
                    discipline,
                )
            )
        return t

    def per_server_response_times(
        self,
        generic_rates: Sequence[float],
        discipline: Discipline | str = Discipline.FCFS,
    ) -> np.ndarray:
        """Vector of ``T'_i`` for a generic-load vector (all servers)."""
        rates = self._as_rates(generic_rates)
        return np.array(
            [
                generic_response_time(
                    srv.size,
                    srv.xbar(self._rbar),
                    float(rates[i]),
                    srv.special_rate,
                    discipline,
                )
                for i, srv in enumerate(self._servers)
            ]
        )

    def check_feasible(self, total_rate: float) -> None:
        """Raise :class:`InfeasibleError` unless ``total_rate < lambda'_max``."""
        if not (math.isfinite(total_rate) and total_rate > 0.0):
            raise ParameterError(
                f"total generic rate must be finite and > 0, got {total_rate!r}"
            )
        cap = self.max_generic_rate
        if total_rate >= cap:
            raise InfeasibleError(
                f"total generic rate {total_rate:.6g} >= group capacity {cap:.6g}",
                total_rate=total_rate,
                capacity=cap,
            )

    def _as_rates(self, generic_rates: Sequence[float]) -> np.ndarray:
        rates = np.asarray(generic_rates, dtype=float)
        if rates.shape != (self.n,):
            raise ParameterError(
                f"expected {self.n} generic rates, got shape {rates.shape}"
            )
        if np.any(~np.isfinite(rates)) or np.any(rates < 0.0):
            raise ParameterError("generic rates must be finite and >= 0")
        return rates
