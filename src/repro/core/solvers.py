"""High-level solver façade: ``optimize_load_distribution``.

The rest of the library (experiments, benchmarks, examples, the
simulation dispatcher) talks to this one entry point and selects a
backend by name:

=================  ==========================================================
method             backend
=================  ==========================================================
``"bisection"``    paper's nested bisection (Figs. 2–3), the reference
``"kkt"``          Brent-based water-filling (same answer, fast for small n)
``"slsqp"``        scipy SLSQP on the constrained simplex
``"closed-form"``  Theorems 1/3 (requires all ``m_i = 1``)
``"vectorized"``   batched NumPy bisection — all servers advance together
                   (fastest for large n; supports ``phi_hint`` warm starts)
``"auto"``         ``closed-form`` when all sizes are 1, ``vectorized`` for
                   large groups (n >= 64), else ``kkt``
=================  ==========================================================
"""

from __future__ import annotations

from typing import Callable

from .bisection import calculate_t_prime
from .closed_form import solve_closed_form
from .exceptions import ParameterError
from .kkt import solve_kkt
from .nlp import solve_nlp
from .response import Discipline
from .result import LoadDistributionResult
from .server import BladeServerGroup
from .vectorized import solve_vectorized

__all__ = ["optimize_load_distribution", "available_methods", "resolve_method"]

_Solver = Callable[..., LoadDistributionResult]

_METHODS: dict[str, _Solver] = {
    "bisection": calculate_t_prime,
    "kkt": solve_kkt,
    "slsqp": solve_nlp,
    "closed-form": solve_closed_form,
    "vectorized": solve_vectorized,
}

#: Group size at which ``"auto"`` switches from the scalar KKT solver to
#: the batched vectorized backend (crossover measured in
#: ``benchmarks/bench_solver_scaling.py``).
AUTO_VECTORIZED_THRESHOLD = 64


def available_methods() -> tuple[str, ...]:
    """Names accepted by ``optimize_load_distribution(..., method=...)``."""
    return tuple(_METHODS) + ("auto",)


def resolve_method(group: BladeServerGroup, method: str = "auto") -> str:
    """Concrete backend name for ``method`` on ``group``.

    Resolves ``"auto"`` (closed form for all-``m_i = 1`` groups, the
    vectorized backend from :data:`AUTO_VECTORIZED_THRESHOLD` servers
    up, KKT otherwise) and validates explicit names.
    """
    name = method.lower()
    if name == "auto":
        if all(srv.size == 1 for srv in group.servers):
            return "closed-form"
        if len(group.servers) >= AUTO_VECTORIZED_THRESHOLD:
            return "vectorized"
        return "kkt"
    if name not in _METHODS:
        raise ParameterError(
            f"unknown method {method!r}; available: {available_methods()}"
        )
    return name


def optimize_load_distribution(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
    method: str = "auto",
    **solver_kwargs,
) -> LoadDistributionResult:
    """Minimize the mean generic-task response time over a server group.

    Parameters
    ----------
    group:
        The heterogeneous blade-server group (sizes, speeds, special
        loads, shared ``rbar``).
    total_rate:
        Total generic arrival rate ``lambda'`` to distribute.  Must be
        strictly below ``group.max_generic_rate``.
    discipline:
        ``"fcfs"`` (special tasks without priority, paper Section 3) or
        ``"priority"`` (Section 4).
    method:
        Solver backend; see module docstring.  ``"auto"`` picks the
        closed form when it applies, the batched vectorized backend for
        groups of ``AUTO_VECTORIZED_THRESHOLD`` or more servers, and the
        Brent/KKT solver otherwise.
    **solver_kwargs:
        Passed through to the backend (e.g. ``tol`` for bisection).

    Returns
    -------
    LoadDistributionResult
        Optimal per-server rates, minimized ``T'``, the multiplier
        ``phi``, and per-server diagnostics.

    Raises
    ------
    InfeasibleError
        If ``total_rate >= group.max_generic_rate``.
    ParameterError
        On an unknown method name or invalid inputs.
    """
    solver = _METHODS[resolve_method(group, method)]
    return solver(group, total_rate, discipline, **solver_kwargs)
