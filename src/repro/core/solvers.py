"""Solver method registry and the internal dispatch path.

The public way to run the optimizer is :func:`repro.solve` (see
:mod:`repro.api`); this module owns the machinery underneath it:

* :class:`SolverMethod` / :func:`register_method` — the backend
  registry.  Each entry binds a name to a solver callable plus its
  capabilities (currently: whether it accepts ``phi_hint`` warm
  starts).  Out-of-tree backends register themselves here and become
  addressable through ``repro.solve(..., method="name")``.
* :func:`resolve_method` — ``"auto"`` resolution and name validation.
* :func:`dispatch` — the non-deprecated internal entry point every
  in-tree caller (facade, controller, sweeps, analysis) routes
  through.  It is also the observability choke point: one ``solve``
  span and the ``repro_solve_*`` metrics per invocation, regardless of
  which entry point the caller came in by.

Registered backends:

=================  ==========================================================
method             backend
=================  ==========================================================
``"bisection"``    paper's nested bisection (Figs. 2–3), the reference
``"kkt"``          Brent-based water-filling (same answer, fast for small n)
``"slsqp"``        scipy SLSQP on the constrained simplex
``"closed-form"``  Theorems 1/3 (requires all ``m_i = 1``)
``"vectorized"``   batched NumPy bisection — all servers advance together
                   (supports ``phi_hint`` warm starts)
``"newton"``       damped-Newton dual ascent on analytic second derivatives
                   (fastest at every measured size; warm-startable)
``"sharded"``      hierarchical KKT for fleet scale: outer Newton on the
                   shared multiplier over per-shard response functions,
                   optional top-k pruning (:mod:`repro.shard`;
                   warm-startable with a per-shard ``phi_hint`` dict)
``"auto"``         ``closed-form`` when all sizes are 1, ``newton`` for
                   groups of n >= 16, else ``kkt``
=================  ==========================================================

:func:`optimize_load_distribution` — the historical entry point — still
works with its original signature but emits a :class:`DeprecationWarning`
pointing at :func:`repro.solve`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Callable

from ..obs import get_obs
from .bisection import calculate_t_prime
from .closed_form import solve_closed_form
from .exceptions import ParameterError
from .kkt import solve_kkt
from .newton import solve_newton
from .nlp import solve_nlp
from .response import Discipline
from .result import LoadDistributionResult
from .server import BladeServerGroup
from .vectorized import _solve_vectorized

__all__ = [
    "SolverMethod",
    "register_method",
    "registered_methods",
    "available_methods",
    "warm_startable_methods",
    "resolve_method",
    "dispatch",
    "optimize_load_distribution",
]

_Solver = Callable[..., LoadDistributionResult]


@dataclass(frozen=True)
class SolverMethod:
    """One registered solver backend.

    Attributes
    ----------
    name:
        The name accepted by ``repro.solve(..., method=name)``.
    fn:
        The solver callable, with the signature
        ``fn(group, total_rate, discipline, **kwargs)``.
    warm_startable:
        Whether ``fn`` accepts a ``phi_hint`` keyword (multiplier warm
        starts along sweeps and controller trajectories).
    """

    name: str
    fn: _Solver
    warm_startable: bool = False


_REGISTRY: dict[str, SolverMethod] = {}


def register_method(
    name: str,
    fn: _Solver,
    *,
    warm_startable: bool = False,
    replace: bool = False,
) -> SolverMethod:
    """Register (or, with ``replace``, override) a solver backend.

    ``name`` becomes addressable via ``repro.solve(..., method=name)``
    and every shim that funnels into :func:`dispatch`.  ``"auto"`` is
    reserved for the resolution rule.
    """
    key = name.lower()
    if key == "auto":
        raise ParameterError('"auto" is reserved for the resolution rule')
    if key in _REGISTRY and not replace:
        raise ParameterError(
            f"method {name!r} is already registered; pass replace=True to override"
        )
    if not callable(fn):
        raise ParameterError(f"solver backend must be callable, got {fn!r}")
    method = SolverMethod(name=key, fn=fn, warm_startable=warm_startable)
    _REGISTRY[key] = method
    return method


def registered_methods() -> dict[str, SolverMethod]:
    """Snapshot of the registry (name to :class:`SolverMethod`)."""
    return dict(_REGISTRY)


def available_methods() -> tuple[str, ...]:
    """Names accepted by ``repro.solve(..., method=...)``."""
    return tuple(_REGISTRY) + ("auto",)


def warm_startable_methods() -> frozenset[str]:
    """Backend names whose solver accepts a ``phi_hint`` warm start."""
    return frozenset(m.name for m in _REGISTRY.values() if m.warm_startable)


register_method("bisection", calculate_t_prime, warm_startable=True)
register_method("kkt", solve_kkt)
register_method("slsqp", solve_nlp)
register_method("closed-form", solve_closed_form)
register_method("vectorized", _solve_vectorized, warm_startable=True)
register_method("newton", solve_newton, warm_startable=True)

#: Group size at which ``"auto"`` switches from the scalar KKT solver to
#: the damped-Newton dual-ascent backend (crossover measured in
#: ``benchmarks/bench_solver_scaling.py`` and committed in
#: ``BENCH_solver_scaling.json``; newton also dominates the batched
#: bisection at every measured size, so it replaced ``"vectorized"`` as
#: the large-group resolution).
AUTO_NEWTON_THRESHOLD = 16

#: Historical name for the large-group auto threshold, kept as an alias
#: while callers migrate; ``"auto"`` now resolves to ``"newton"`` there.
AUTO_VECTORIZED_THRESHOLD = AUTO_NEWTON_THRESHOLD


def resolve_method(group: BladeServerGroup, method: str = "auto") -> str:
    """Concrete backend name for ``method`` on ``group``.

    Resolves ``"auto"`` (closed form for all-``m_i = 1`` groups, the
    Newton dual-ascent backend from :data:`AUTO_NEWTON_THRESHOLD`
    servers up, KKT otherwise) and validates explicit names against the
    registry.
    """
    name = method.lower()
    if name == "auto":
        if all(srv.size == 1 for srv in group.servers):
            return "closed-form"
        if len(group.servers) >= AUTO_NEWTON_THRESHOLD:
            return "newton"
        return "kkt"
    if name not in _REGISTRY:
        raise ParameterError(
            f"unknown method {method!r}; available: {available_methods()}"
        )
    return name


#: Resolved metric families of the solve funnel, keyed by the registry
#: instance they came from.  Family lookup walks the registry's name
#: table and re-validates labels on every call; on the obs-enabled hot
#: path that cost used to be paid three times per solve, inflating the
#: dispatch-overhead budget the benchmarks assert.  The cache is
#: invalidated by identity, so ``configure()`` swapping in a fresh
#: registry (or tests resetting the global context) transparently
#: re-resolves against the new instance.
_SOLVE_METRICS: tuple | None = None


def _solve_metrics(reg):
    """The (counter, latency, iterations) families bound to ``reg``."""
    global _SOLVE_METRICS
    cached = _SOLVE_METRICS
    if cached is None or cached[0] is not reg:
        cached = (
            reg,
            reg.counter(
                "repro_solves_total",
                "Solver invocations per backend",
                labels=("method",),
            ),
            reg.histogram(
                "repro_solve_seconds", "Wall-clock seconds per solve", lo=1e-6, hi=1e3
            ),
            reg.histogram(
                "repro_solve_iterations",
                "Outer-loop iterations per solve",
                lo=1.0,
                hi=65536.0,
                buckets=16,
            ),
        )
        _SOLVE_METRICS = cached
    return cached[1], cached[2], cached[3]


def dispatch(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
    method: str = "auto",
    **solver_kwargs,
) -> LoadDistributionResult:
    """Resolve ``method`` and run the backend (internal entry point).

    This is the single funnel every solve in the library passes
    through; when observability is enabled it wraps the backend call in
    a ``solve`` span and records

    * ``repro_solves_total{method}`` — invocations per backend,
    * ``repro_solve_seconds`` — wall-clock latency histogram,
    * ``repro_solve_iterations`` — outer-loop iteration histogram.

    External callers should use :func:`repro.solve`, which adds input
    coercion and returns the richer
    :class:`~repro.api.SolveResult`.
    """
    backend = _REGISTRY[resolve_method(group, method)]
    o = get_obs()
    if not o.enabled:
        return backend.fn(group, total_rate, discipline, **solver_kwargs)
    with o.tracer.span(
        "solve",
        n=group.n,
        method=backend.name,
        lam=float(total_rate),
        discipline=str(getattr(discipline, "value", discipline)),
    ) as span:
        start = time.perf_counter()
        result = backend.fn(group, total_rate, discipline, **solver_kwargs)
        elapsed = time.perf_counter() - start
        span.note(iterations=result.iterations, t_prime=result.mean_response_time)
    solves, seconds, iters = _solve_metrics(o.registry)
    solves.labels(method=backend.name).inc()
    seconds.observe(elapsed)
    iters.observe(max(result.iterations, 1))
    return result


def optimize_load_distribution(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
    method: str = "auto",
    **solver_kwargs,
) -> LoadDistributionResult:
    """Minimize the mean generic-task response time over a server group.

    .. deprecated:: 1.1
        This is the historical entry point, kept signature-compatible;
        new code should call :func:`repro.solve`, which returns the
        same numbers (bit-identical rates) as a
        :class:`~repro.api.SolveResult`.

    Parameters
    ----------
    group:
        The heterogeneous blade-server group (sizes, speeds, special
        loads, shared ``rbar``).
    total_rate:
        Total generic arrival rate ``lambda'`` to distribute.  Must be
        strictly below ``group.max_generic_rate``.
    discipline:
        ``"fcfs"`` (special tasks without priority, paper Section 3) or
        ``"priority"`` (Section 4).
    method:
        Solver backend; see module docstring.
    **solver_kwargs:
        Passed through to the backend (e.g. ``tol`` for bisection).

    Raises
    ------
    InfeasibleError
        If ``total_rate >= group.max_generic_rate``.
    ParameterError
        On an unknown method name or invalid inputs.
    """
    warnings.warn(
        "optimize_load_distribution() is deprecated; use repro.solve(servers, "
        "lam, discipline=..., method=...) — same numbers, richer result",
        DeprecationWarning,
        stacklevel=2,
    )
    return dispatch(group, total_rate, discipline, method, **solver_kwargs)
