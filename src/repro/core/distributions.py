"""Waiting- and response-time *distributions* for M/M/m stations.

The paper optimizes the mean response time, but a cloud provider sells
*percentile* SLOs ("95% of requests under 2 s").  For an FCFS M/M/m
queue both distributions are closed-form, so percentile targets cost
nothing extra:

Waiting time ``W``
    A mixed distribution: an atom of mass ``1 - P_q`` at zero (the
    arrival finds a free blade) plus an exponential tail,

    .. math:: P(W > t) = P_q \\, e^{-\\theta t}, \\qquad
              \\theta = m\\mu(1 - \\rho).

Response time ``T = W + S``
    The independent sum of ``W`` and the service time
    ``S ~ Exp(mu)``:

    .. math::

        P(T > t) = (1 - P_q)\\,e^{-\\mu t}
                 + P_q\\,\\frac{\\theta e^{-\\mu t} - \\mu e^{-\\theta t}}
                               {\\theta - \\mu}
        \\qquad (\\theta \\ne \\mu),

    with the ``theta = mu`` limit ``(1 + P_q \\mu t)\\,e^{-\\mu t}``.

Both classes expose ``sf``/``cdf``/``pdf`` (tail, distribution, density
— the density of ``W`` refers to its continuous part only), ``mean``
(cross-checked against :class:`~repro.core.mmm.MMmQueue` in the tests),
and ``quantile`` via a bracketed Brent search on the tail.

Scope: FCFS discipline.  Under the priority discipline the generic-task
waiting time is a geometric-like compound without an elementary closed
form; use the simulator (``repro.sim``) to estimate priority
percentiles empirically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from scipy.optimize import brentq

from .erlang import erlang_c
from .exceptions import ParameterError, SaturationError

__all__ = [
    "WaitingTimeDistribution",
    "ResponseTimeDistribution",
    "GroupResponseTimeDistribution",
]


def _validate(m: int, xbar: float, rho: float) -> None:
    if not isinstance(m, int) or isinstance(m, bool) or m < 1:
        raise ParameterError(f"m must be a positive int, got {m!r}")
    if not (math.isfinite(xbar) and xbar > 0.0):
        raise ParameterError(f"xbar must be finite and > 0, got {xbar!r}")
    if not (0.0 <= rho < 1.0):
        if rho >= 1.0:
            raise SaturationError(f"rho must be < 1, got {rho}", rho=rho)
        raise ParameterError(f"rho must be >= 0, got {rho}")


@dataclass(frozen=True)
class WaitingTimeDistribution:
    """Distribution of the FCFS M/M/m waiting time.

    Parameters
    ----------
    m, xbar, rho:
        Station size, mean service time, total utilization.
    """

    m: int
    xbar: float
    rho: float
    _pq: float = field(init=False, repr=False)
    _theta: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        _validate(self.m, self.xbar, self.rho)
        object.__setattr__(self, "_pq", erlang_c(self.m, self.rho))
        # Tail rate theta = m mu (1 - rho).
        object.__setattr__(
            self, "_theta", self.m / self.xbar * (1.0 - self.rho)
        )

    @property
    def prob_wait(self) -> float:
        """Probability of any wait at all (the Erlang-C value)."""
        return self._pq

    @property
    def tail_rate(self) -> float:
        """Exponential decay rate ``theta = m mu (1 - rho)`` of the tail."""
        return self._theta

    def sf(self, t: float) -> float:
        """Survival function ``P(W > t)``."""
        if t < 0.0:
            raise ParameterError(f"t must be >= 0, got {t}")
        return self._pq * math.exp(-self._theta * t)

    def cdf(self, t: float) -> float:
        """Cumulative distribution ``P(W <= t)``."""
        return 1.0 - self.sf(t)

    def pdf(self, t: float) -> float:
        """Density of the continuous part (excludes the atom at zero)."""
        if t < 0.0:
            raise ParameterError(f"t must be >= 0, got {t}")
        return self._pq * self._theta * math.exp(-self._theta * t)

    @property
    def mean(self) -> float:
        """``E[W] = P_q / theta`` (the paper's ``W``)."""
        return self._pq / self._theta

    def quantile(self, p: float) -> float:
        """Smallest ``t`` with ``P(W <= t) >= p``.

        Returns 0 whenever ``p <= 1 - P_q`` (the atom absorbs it);
        otherwise inverts the exponential tail analytically.
        """
        if not (0.0 <= p < 1.0):
            raise ParameterError(f"p must be in [0, 1), got {p}")
        if p <= 1.0 - self._pq:
            return 0.0
        return -math.log((1.0 - p) / self._pq) / self._theta


@dataclass(frozen=True)
class ResponseTimeDistribution:
    """Distribution of the FCFS M/M/m response time ``T = W + S``."""

    m: int
    xbar: float
    rho: float
    _pq: float = field(init=False, repr=False)
    _theta: float = field(init=False, repr=False)
    _mu: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        _validate(self.m, self.xbar, self.rho)
        object.__setattr__(self, "_pq", erlang_c(self.m, self.rho))
        object.__setattr__(self, "_mu", 1.0 / self.xbar)
        object.__setattr__(
            self, "_theta", self.m / self.xbar * (1.0 - self.rho)
        )

    def sf(self, t: float) -> float:
        """Survival function ``P(T > t)``."""
        if t < 0.0:
            raise ParameterError(f"t must be >= 0, got {t}")
        mu, theta, pq = self._mu, self._theta, self._pq
        if abs(theta - mu) < 1e-12 * mu:
            # Confluent case m(1-rho) = 1: T given wait is Gamma(2, mu).
            return math.exp(-mu * t) * (1.0 + pq * mu * t)
        tail_given_wait = (theta * math.exp(-mu * t) - mu * math.exp(-theta * t)) / (
            theta - mu
        )
        return (1.0 - pq) * math.exp(-mu * t) + pq * tail_given_wait

    def cdf(self, t: float) -> float:
        """Cumulative distribution ``P(T <= t)``."""
        return 1.0 - self.sf(t)

    def pdf(self, t: float) -> float:
        """Density of ``T`` (continuous everywhere: ``S > 0`` a.s.)."""
        if t < 0.0:
            raise ParameterError(f"t must be >= 0, got {t}")
        mu, theta, pq = self._mu, self._theta, self._pq
        if abs(theta - mu) < 1e-12 * mu:
            # -d/dt [e^{-mu t}(1 + pq mu t)].
            return mu * math.exp(-mu * t) * (1.0 - pq + pq * mu * t)
        dens_given_wait = (
            theta * mu * (math.exp(-theta * t) - math.exp(-mu * t)) / (mu - theta)
        )
        return (1.0 - pq) * mu * math.exp(-mu * t) + pq * dens_given_wait

    @property
    def mean(self) -> float:
        """``E[T] = xbar + P_q / theta`` (the paper's ``T``)."""
        return self.xbar + self._pq / self._theta

    def quantile(self, p: float) -> float:
        """Smallest ``t`` with ``P(T <= t) >= p`` (Brent on the tail)."""
        if not (0.0 <= p < 1.0):
            raise ParameterError(f"p must be in [0, 1), got {p}")
        if p == 0.0:
            return 0.0
        target = 1.0 - p
        # Bracket: the tail is below max(e^{-mu t}, e^{-theta t}) scaled
        # by <= 2, so t_hi = (ln(2/target))/min(mu, theta) suffices.
        rate = min(self._mu, self._theta)
        hi = math.log(2.0 / target) / rate + 1.0
        while self.sf(hi) > target:  # pragma: no cover - defensive
            hi *= 2.0
        return float(brentq(lambda t: self.sf(t) - target, 0.0, hi, xtol=1e-12))


class GroupResponseTimeDistribution:
    """Response-time distribution of generic tasks across a whole group.

    Under a static split a generic task lands on server ``i`` with
    probability ``w_i = lambda'_i / lambda'`` and then experiences that
    server's M/M/m response time, so the group law is the *mixture*

    .. math::

        P(T > t) = \\sum_i w_i \\, P(T_i > t).

    The group p95 is the quantile of this mixture — **not** the
    load-weighted average of per-server p95s (quantiles do not average;
    the mixture quantile is pulled toward the heavy-tailed servers).
    The mean, by linearity, *is* the weighted mean, i.e. exactly the
    paper's ``T'``.

    Parameters
    ----------
    components:
        Per-server :class:`ResponseTimeDistribution` objects.
    weights:
        Routing probabilities; non-negative, summing to one.  Servers
        with zero weight may be omitted or carried with weight 0.

    Scope: FCFS only, like the per-server distribution.
    """

    def __init__(
        self,
        components: "list[ResponseTimeDistribution]",
        weights: "list[float]",
    ) -> None:
        if len(components) != len(weights) or not components:
            raise ParameterError(
                "components and weights must be equal-length and non-empty"
            )
        w = [float(x) for x in weights]
        if any(not math.isfinite(x) or x < 0.0 for x in w):
            raise ParameterError("weights must be finite and >= 0")
        total = sum(w)
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-12):
            raise ParameterError(f"weights must sum to 1, got {total}")
        self._parts = list(zip(components, w))

    @classmethod
    def from_distribution(cls, group, result) -> "GroupResponseTimeDistribution":
        """Build from a solver result on a :class:`BladeServerGroup`.

        Zero-rate servers are skipped (they receive no generic tasks).
        """
        comps, weights = [], []
        fractions = result.fractions
        for i, srv in enumerate(group.servers):
            if fractions[i] <= 0.0:
                continue
            comps.append(
                ResponseTimeDistribution(
                    srv.size,
                    srv.xbar(group.rbar),
                    float(result.utilizations[i]),
                )
            )
            weights.append(float(fractions[i]))
        total = sum(weights)
        weights = [w / total for w in weights]
        return cls(comps, weights)

    def sf(self, t: float) -> float:
        """Mixture survival function ``P(T > t)``."""
        return sum(w * d.sf(t) for d, w in self._parts)

    def cdf(self, t: float) -> float:
        """Mixture distribution function ``P(T <= t)``."""
        return 1.0 - self.sf(t)

    def pdf(self, t: float) -> float:
        """Mixture density."""
        return sum(w * d.pdf(t) for d, w in self._parts)

    @property
    def mean(self) -> float:
        """Mixture mean — equals the paper's weighted ``T'`` exactly."""
        return sum(w * d.mean for d, w in self._parts)

    def quantile(self, p: float) -> float:
        """Smallest ``t`` with ``P(T <= t) >= p`` (Brent on the mixture)."""
        if not (0.0 <= p < 1.0):
            raise ParameterError(f"p must be in [0, 1), got {p}")
        if p == 0.0:
            return 0.0
        target = 1.0 - p
        # Bracket above by the largest component quantile: the mixture
        # tail is at most the max component tail, so the mixture
        # quantile cannot exceed the max component quantile.
        hi = max(d.quantile(p) for d, w in self._parts if w > 0.0) + 1e-12
        if self.sf(hi) > target:  # pragma: no cover - defensive
            while self.sf(hi) > target:
                hi *= 2.0
        return float(brentq(lambda t: self.sf(t) - target, 0.0, hi, xtol=1e-12))
