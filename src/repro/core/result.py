"""Result container returned by every load-distribution solver."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .response import Discipline

__all__ = ["LoadDistributionResult"]


@dataclass(frozen=True)
class LoadDistributionResult:
    """Outcome of an optimal (or heuristic) load-distribution computation.

    Attributes
    ----------
    generic_rates:
        Per-server generic arrival rates ``lambda'_i`` (length ``n``).
    mean_response_time:
        The achieved mean generic-task response time ``T'``.
    phi:
        The Lagrange multiplier at the optimum — the common marginal
        cost ``dT'/d lambda'_i`` of every server carrying load.  ``nan``
        for heuristic policies that do not compute one.
    discipline:
        The queueing discipline the solution was computed for.
    method:
        Name of the solver/policy that produced the result.
    utilizations:
        Per-server total utilizations ``rho_i`` at the solution.
    per_server_response_times:
        Per-server generic response times ``T'_i`` at the solution.
    iterations:
        Iteration count of the outer solver loop, when meaningful.
    converged:
        Whether the solver met its tolerance.
    """

    generic_rates: np.ndarray
    mean_response_time: float
    phi: float
    discipline: Discipline
    method: str
    utilizations: np.ndarray
    per_server_response_times: np.ndarray
    iterations: int = 0
    converged: bool = True
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Built-in floats, not numpy scalars: keeps reprs clean and the
        # public API independent of the numpy version.
        object.__setattr__(
            self, "mean_response_time", float(self.mean_response_time)
        )
        object.__setattr__(self, "phi", float(self.phi))
        object.__setattr__(
            self, "generic_rates", np.asarray(self.generic_rates, dtype=float)
        )
        object.__setattr__(
            self, "utilizations", np.asarray(self.utilizations, dtype=float)
        )
        object.__setattr__(
            self,
            "per_server_response_times",
            np.asarray(self.per_server_response_times, dtype=float),
        )

    @property
    def n(self) -> int:
        """Number of servers in the solution."""
        return int(self.generic_rates.shape[0])

    @property
    def total_rate(self) -> float:
        """Total generic arrival rate ``sum_i lambda'_i``."""
        return float(self.generic_rates.sum())

    @property
    def fractions(self) -> np.ndarray:
        """Routing probabilities ``lambda'_i / lambda'`` (sum to one)."""
        total = self.total_rate
        if total <= 0.0:
            return np.zeros_like(self.generic_rates)
        return self.generic_rates / total

    def summary(self) -> str:
        """Human-readable multi-line summary mirroring the paper's tables."""
        lines = [
            f"method={self.method} discipline={self.discipline.value} "
            f"T'={self.mean_response_time:.7f} phi={self.phi:.7g} "
            f"lambda'={self.total_rate:.7g}",
            f"{'i':>3} {'lambda_i':>12} {'rho_i':>10} {'T_i':>10}",
        ]
        for i in range(self.n):
            lines.append(
                f"{i + 1:>3} {self.generic_rates[i]:>12.7f} "
                f"{self.utilizations[i]:>10.7f} "
                f"{self.per_server_response_times[i]:>10.7f}"
            )
        return "\n".join(lines)
