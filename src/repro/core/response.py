"""Generic-task response-time models for the two queueing disciplines.

Section 3 of the paper derives, for a blade server ``S_i`` carrying a
merged stream of generic (rate ``lambda'_i``) and special (rate
``lambda''_i``) tasks, the mean response time of *generic* tasks:

Non-priority (shared FCFS queue)
    .. math::

        T'_i = \\bar{x}_i \\left(1 + p_{i,0}
               \\frac{m_i^{m_i-1}}{m_i!}
               \\frac{\\rho_i^{m_i}}{(1-\\rho_i)^2}\\right)

Priority (special tasks non-preemptively prioritized, Theorem 2)
    .. math::

        T'_i = \\bar{x}_i \\left(1 + p_{i,0}
               \\frac{m_i^{m_i-1}}{m_i!}
               \\frac{1}{1-\\rho''_i}
               \\frac{\\rho_i^{m_i}}{(1-\\rho_i)^2}\\right)

together with the analytic partial derivatives ``dT'_i/d rho_i`` needed
by the Lagrange-multiplier optimizer.  Both are implemented here, in a
numerically robust form (log-space for the ``m^{m-1}/m!`` and
``rho^m`` factors), alongside the intermediate waiting-time quantities
(``W''_i`` for special tasks, ``W'_i`` for generic tasks) from the proof
of Theorem 2.

A :class:`Discipline` enum selects between the two modes throughout the
library.
"""

from __future__ import annotations

import enum
import math

import numpy as _np

from .erlang import d2p_zero_drho2, dp_zero_drho, erlang_c, p_zero
from .exceptions import ParameterError, SaturationError

__all__ = [
    "Discipline",
    "generic_response_time",
    "generic_response_time_rho",
    "d_generic_response_time_drho",
    "d2_generic_response_time_drho2",
    "special_waiting_time",
    "generic_waiting_time",
    "waiting_factor",
]


class Discipline(enum.Enum):
    """Queueing discipline for special tasks on a blade server.

    ``FCFS``
        Special tasks have no priority; generic and special tasks share
        one first-come-first-served queue (paper Section 3).
    ``PRIORITY``
        Special tasks are placed ahead of all generic tasks in the
        waiting queue, non-preemptively (paper Section 4).
    """

    FCFS = "fcfs"
    PRIORITY = "priority"

    @classmethod
    def coerce(cls, value: "Discipline | str") -> "Discipline":
        """Accept either a :class:`Discipline` or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            raise ParameterError(
                f"unknown discipline {value!r}; expected one of "
                f"{[d.value for d in cls]}"
            ) from exc


def _validate(m: int, xbar: float, rho: float, rho_special: float) -> None:
    if (
        not isinstance(m, (int, _np.integer))
        or isinstance(m, bool)
        or m < 1
    ):
        raise ParameterError(f"m must be a positive int, got {m!r}")
    if not (math.isfinite(xbar) and xbar > 0.0):
        raise ParameterError(f"xbar must be finite and > 0, got {xbar!r}")
    if not (0.0 <= rho_special <= rho):
        raise ParameterError(
            f"need 0 <= rho_special <= rho, got rho_special={rho_special}, rho={rho}"
        )
    if rho >= 1.0:
        raise SaturationError(f"rho must be < 1, got {rho}", rho=rho)


def _log_shape(m: int, rho: float) -> float:
    """``log( m^{m-1}/m! * rho^m )`` — the shared shape factor of T'."""
    return (m - 1) * math.log(m) - math.lgamma(m + 1) + m * math.log(rho)


def waiting_factor(m: int, rho: float) -> float:
    """The non-priority waiting term ``p_0 m^{m-1}/m! rho^m/(1-rho)^2``.

    Equals ``P_q / (m (1 - rho))`` and therefore also ``W / xbar``: the
    mean waiting time expressed in units of the mean service time.
    """
    _validate(m, 1.0, rho, 0.0)
    if rho == 0.0:
        return 0.0
    p0 = p_zero(m, rho)
    return p0 * math.exp(_log_shape(m, rho)) / (1.0 - rho) ** 2


def generic_response_time_rho(
    m: int,
    xbar: float,
    rho: float,
    rho_special: float,
    discipline: Discipline | str = Discipline.FCFS,
) -> float:
    """Mean generic-task response time ``T'_i`` as a function of ``rho``.

    Parameters
    ----------
    m, xbar:
        Server size and mean service time.
    rho:
        Total utilization ``(lambda'_i + lambda''_i) xbar / m``.
    rho_special:
        Special-task utilization ``lambda''_i xbar / m``;  must satisfy
        ``0 <= rho_special <= rho < 1``.
    discipline:
        ``FCFS`` applies the Section-3 formula; ``PRIORITY`` applies
        Theorem 2's extra ``1/(1 - rho_special)`` factor.
    """
    _validate(m, xbar, rho, rho_special)
    disc = Discipline.coerce(discipline)
    w = waiting_factor(m, rho)
    if disc is Discipline.PRIORITY:
        w /= 1.0 - rho_special
    return xbar * (1.0 + w)


def generic_response_time(
    m: int,
    xbar: float,
    generic_rate: float,
    special_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
) -> float:
    """Mean generic-task response time ``T'_i`` from arrival rates.

    Thin wrapper over :func:`generic_response_time_rho` that converts
    ``(lambda'_i, lambda''_i)`` into ``(rho_i, rho''_i)``.
    """
    if generic_rate < 0.0 or special_rate < 0.0:
        raise ParameterError(
            f"arrival rates must be >= 0, got generic={generic_rate}, "
            f"special={special_rate}"
        )
    rho = (generic_rate + special_rate) * xbar / m
    rho_special = special_rate * xbar / m
    return generic_response_time_rho(m, xbar, rho, rho_special, discipline)


def d_generic_response_time_drho(
    m: int,
    xbar: float,
    rho: float,
    rho_special: float,
    discipline: Discipline | str = Discipline.FCFS,
) -> float:
    """Analytic partial derivative ``dT'_i / d rho_i`` from the paper.

    .. math::

        \\frac{\\partial T'_i}{\\partial \\rho_i}
        = \\bar{x}_i \\frac{m^{m-1}}{m!} \\left[
            \\frac{\\partial p_0}{\\partial \\rho}
            \\frac{\\rho^m}{(1-\\rho)^2}
          + p_0 \\frac{\\rho^{m-1}(m - (m-2)\\rho)}{(1-\\rho)^3}
          \\right]

    with an extra ``1/(1 - rho''_i)`` under the priority discipline
    (``rho''_i`` is held constant: the optimizer only moves generic
    load).  Strictly positive for ``rho`` in (0, 1), which is what makes
    the marginal-cost bisection of the paper's Fig. 2 well-posed.
    """
    _validate(m, xbar, rho, rho_special)
    disc = Discipline.coerce(discipline)
    if rho == 0.0:
        # Limit: only the m = 1 case has a nonzero derivative at rho = 0
        # (T' = xbar/(1-rho) there, slope xbar); for m >= 2 the rho^{m-1}
        # factor kills both terms.
        return xbar if m == 1 else 0.0
    log_c = (m - 1) * math.log(m) - math.lgamma(m + 1)
    c = math.exp(log_c)
    p0 = p_zero(m, rho)
    dp0 = dp_zero_drho(m, rho)
    term1 = dp0 * rho**m / (1.0 - rho) ** 2
    term2 = p0 * rho ** (m - 1) * (m - (m - 2) * rho) / (1.0 - rho) ** 3
    out = xbar * c * (term1 + term2)
    if disc is Discipline.PRIORITY:
        out /= 1.0 - rho_special
    return out


def d2_generic_response_time_drho2(
    m: int,
    xbar: float,
    rho: float,
    rho_special: float,
    discipline: Discipline | str = Discipline.FCFS,
) -> float:
    """Analytic second derivative ``d^2 T'_i / d rho_i^2``.

    Writing ``T' = xbar (1 + C p_0(rho) h(rho))`` with
    ``C = m^{m-1}/m!`` and ``h = rho^m/(1-rho)^2``, the chain rule gives

    .. math::

        \\frac{\\partial^2 T'_i}{\\partial \\rho_i^2}
          = \\bar{x}_i C \\left( p_0'' h + 2 p_0' h' + p_0 h'' \\right),

    where ``h' = rho^{m-1}(m - (m-2) rho)/(1-rho)^3`` and

    .. math::

        h'' = \\frac{\\rho^{m-2}\\left[(m-1)(m-(m-2)\\rho)
                     - (m-2)\\rho\\right]}{(1-\\rho)^3}
            + \\frac{3 \\rho^{m-1}(m-(m-2)\\rho)}{(1-\\rho)^4} .

    An extra ``1/(1 - rho''_i)`` applies under the priority discipline
    (``rho''_i`` held constant, exactly as in
    :func:`d_generic_response_time_drho`).  Strictly positive on
    ``(0, 1)`` — ``T'`` is convex — which is what lets the
    damped-Newton backend take full second-order steps on the inner
    per-server roots and on the dual multiplier without losing the
    bracketing safeguards.  Validated against central finite differences
    of :func:`d_generic_response_time_drho` in the test suite.
    """
    _validate(m, xbar, rho, rho_special)
    disc = Discipline.coerce(discipline)
    if m == 1:
        # T' = xbar/(1-rho): the M/M/1 closed form avoids the rho^{m-2}
        # factor, which is singular to evaluate literally at m = 1.
        out = 2.0 * xbar / (1.0 - rho) ** 3
        if disc is Discipline.PRIORITY:
            out /= 1.0 - rho_special
        return out
    if rho == 0.0:
        # Limit: h''(0) = 2 only at m = 2 (every term carries rho^{m-2});
        # p_0(0) = 1 and both p_0-derivative terms vanish with h, h'.
        if m != 2:
            return 0.0
        out = 2.0 * xbar  # xbar * C * h''(0) with C = 2^{1}/2! = 1
        if disc is Discipline.PRIORITY:
            out /= 1.0 - rho_special
        return out
    log_c = (m - 1) * math.log(m) - math.lgamma(m + 1)
    c = math.exp(log_c)
    p0 = p_zero(m, rho)
    dp0 = dp_zero_drho(m, rho)
    d2p0 = d2p_zero_drho2(m, rho)
    one = 1.0 - rho
    h = rho**m / one**2
    dh = rho ** (m - 1) * (m - (m - 2) * rho) / one**3
    d2h = (
        rho ** (m - 2) * ((m - 1) * (m - (m - 2) * rho) - (m - 2) * rho) / one**3
        + 3.0 * rho ** (m - 1) * (m - (m - 2) * rho) / one**4
    )
    out = xbar * c * (d2p0 * h + 2.0 * dp0 * dh + p0 * d2h)
    if disc is Discipline.PRIORITY:
        out /= 1.0 - rho_special
    return out


def special_waiting_time(
    m: int, xbar: float, rho: float, rho_special: float
) -> float:
    """Mean waiting time ``W''_i`` of *special* tasks under priority.

    From the proof of Theorem 2:
    ``W'' = W0 / (1 - rho'') = P_q xbar / (m (1 - rho''))``.
    """
    _validate(m, xbar, rho, rho_special)
    if rho_special >= 1.0:
        raise SaturationError(
            f"special-task utilization must be < 1, got {rho_special}",
            rho=rho_special,
        )
    pq = erlang_c(m, rho)
    return pq * xbar / (m * (1.0 - rho_special))


def generic_waiting_time(
    m: int,
    xbar: float,
    rho: float,
    rho_special: float,
    discipline: Discipline | str = Discipline.FCFS,
) -> float:
    """Mean waiting time ``W'_i`` of generic tasks.

    ``FCFS``: ``W' = W = P_q xbar / (m (1 - rho))``.
    ``PRIORITY`` (Theorem 2): ``W' = W0 / ((1 - rho'')(1 - rho))``.
    """
    _validate(m, xbar, rho, rho_special)
    disc = Discipline.coerce(discipline)
    pq = erlang_c(m, rho)
    w = pq * xbar / (m * (1.0 - rho))
    if disc is Discipline.PRIORITY:
        w /= 1.0 - rho_special
    return w
