"""Direct nonlinear-programming solver (scipy SLSQP) for cross-checking.

Minimizes ``T'(lambda'_1..lambda'_n)`` directly on the simplex

.. math::

    \\{\\lambda' : \\textstyle\\sum_i \\lambda'_i = \\lambda',\\;
      0 \\le \\lambda'_i \\le (1-\\epsilon)(m_i/\\bar x_i - \\lambda''_i)\\}

using the analytic gradient from :mod:`repro.core.objective`.  Because
the objective is convex on this set, SLSQP's local optimum is the
global one, giving a third independent confirmation of the paper's
bisection result (the ablation benchmark quantifies the accuracy/speed
trade-off of all three solvers).

A feasible, strictly interior starting point is built by splitting the
load proportionally to spare capacity — the ``proportional`` baseline
policy — which keeps every server away from its saturation pole where
the objective is ill-conditioned.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from .exceptions import ConvergenceError, ParameterError
from .objective import gradient
from .response import Discipline
from .result import LoadDistributionResult
from .server import BladeServerGroup

__all__ = ["solve_nlp"]

_BOUND_MARGIN = 1e-9


def solve_nlp(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
    ftol: float = 1e-14,
    max_iter: int = 500,
) -> LoadDistributionResult:
    """Optimal load distribution via SLSQP on the constrained simplex.

    Raises
    ------
    ConvergenceError
        If SLSQP reports failure (carries the best iterate in ``best``).
    """
    disc = Discipline.coerce(discipline)
    group.check_feasible(total_rate)
    if ftol <= 0.0:
        raise ParameterError(f"ftol must be > 0, got {ftol}")
    caps = group.spare_capacities
    n = group.n

    # Strictly interior start: proportional to spare capacity.
    x0 = caps / caps.sum() * total_rate

    def fun(x: np.ndarray) -> float:
        # Clip defensively: SLSQP may probe epsilon outside the bounds.
        x = np.clip(x, 0.0, caps * (1.0 - _BOUND_MARGIN))
        # Servers at exactly zero are fine: they carry zero weight.
        return group.mean_response_time(x, disc)

    def jac(x: np.ndarray) -> np.ndarray:
        x = np.clip(x, 0.0, caps * (1.0 - _BOUND_MARGIN))
        return gradient(group, x, disc)

    res = minimize(
        fun,
        x0,
        jac=jac,
        method="SLSQP",
        bounds=[(0.0, float(c) * (1.0 - _BOUND_MARGIN)) for c in caps],
        constraints=[
            {
                "type": "eq",
                "fun": lambda x: float(x.sum()) - total_rate,
                "jac": lambda x: np.ones(n),
            }
        ],
        options={"ftol": ftol, "maxiter": max_iter},
    )
    rates = np.clip(res.x, 0.0, caps * (1.0 - _BOUND_MARGIN))
    s = rates.sum()
    if s > 0.0:
        rates = rates * (total_rate / s)
    if not res.success:
        raise ConvergenceError(
            f"SLSQP failed: {res.message}", best=rates
        )
    return LoadDistributionResult(
        generic_rates=rates,
        mean_response_time=group.mean_response_time(rates, disc),
        # At the optimum every loaded server sits at the common marginal
        # phi while unloaded servers sit above it, so phi is the minimum.
        phi=float(np.min(gradient(group, rates, disc))),
        discipline=disc,
        method="slsqp",
        utilizations=group.utilizations(rates),
        per_server_response_times=group.per_server_response_times(rates, disc),
        iterations=int(res.nit),
        converged=bool(res.success),
    )
