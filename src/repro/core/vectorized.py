"""Vectorized solver backend: batched simultaneous bisection.

The paper's nested bisection (:mod:`repro.core.bisection`) evaluates
every marginal cost as a scalar Python call: each outer-``phi`` step
runs ``n`` independent inner bisections, each making tens of
:func:`~repro.core.objective.marginal_cost` evaluations.  At the
paper's scale (``n = 7``) this is fine; at cluster scale (hundreds to
thousands of heterogeneous servers, cf. Gardner et al. on scalable
heterogeneous load balancing) the scalar loop dominates the runtime.

This module keeps the *algorithm* of Figs. 2–3 but restructures the
inner step as a **batched simultaneous bisection**:

* NumPy array kernels :func:`p_zero_vec`, :func:`waiting_factor_vec`
  and :func:`marginal_cost_vec` evaluate all ``n`` servers in one shot,
  using the same stable scaled-recurrence / log-space math as
  :mod:`repro.core.erlang` and :mod:`repro.core.response` (no
  factorials, no ``rho**m`` underflow surprises).
* :func:`find_lambda_batched` advances all per-server brackets
  ``[lb_i, ub_i]`` together as arrays: one outer-``phi`` evaluation
  costs ``O(log(max_cap / tol))`` vectorized sweeps instead of ``n``
  sequential scalar bisections.  Water-filling servers (marginal at
  zero already above ``phi``) are masked out exactly as in the scalar
  code, and a server whose marginal stays below ``phi`` even at the
  stability boundary converges to the boundary, matching Fig. 2's
  lines (6)–(7) clip.
* :func:`solve_vectorized` wraps the outer ``phi`` search (shared
  bracketing logic with :func:`~repro.core.bisection.calculate_t_prime`,
  including ``phi_hint`` warm starts for load sweeps) and settles the
  final residual with the cap-respecting projection.

The backend is registered as ``method="vectorized"`` in
:func:`repro.core.solvers.optimize_load_distribution` and reproduces
the scalar backend's results to well below 1e-9 per server — asserted
digit-for-digit against Tables 1–2 and cross-checked on randomized
instances by the test suite.
"""

from __future__ import annotations

import math
import warnings
from typing import Sequence

import numpy as np
from scipy.special import gammaln

from ..obs import get_obs
from .bisection import (
    DEFAULT_SEED,
    DEFAULT_TOL,
    MAX_ITER,
    STABILITY_MARGIN,
    _bracket_phi,
    settle_residual,
)
from .exceptions import ConvergenceError, ParameterError, SaturationError
from .response import Discipline
from .result import LoadDistributionResult
from .server import BladeServerGroup

__all__ = [
    "p_zero_vec",
    "waiting_factor_vec",
    "marginal_cost_vec",
    "find_lambda_batched",
    "solve_vectorized",
]

#: Rescale threshold of the partial-sum recurrence (same as erlang.py).
_RESCALE_AT = 1e290


def _as_server_arrays(
    ms: Sequence[int], rhos: Sequence[float]
) -> tuple[np.ndarray, np.ndarray]:
    """Validate and coerce parallel (m, rho) arrays."""
    ms = np.asarray(ms, dtype=np.int64)
    rhos = np.asarray(rhos, dtype=float)
    if ms.ndim != 1 or ms.shape != rhos.shape:
        raise ParameterError(
            f"ms and rhos must be equal-length 1-D arrays, got shapes "
            f"{ms.shape} and {rhos.shape}"
        )
    if ms.size == 0:
        raise ParameterError("need at least one server")
    if np.any(ms < 1):
        raise ParameterError(f"server sizes must be >= 1, got {ms}")
    if np.any(~np.isfinite(rhos)) or np.any(rhos < 0.0):
        raise ParameterError(f"utilizations must be finite and >= 0, got {rhos}")
    if np.any(rhos >= 1.0):
        worst = float(rhos.max())
        raise SaturationError(
            f"M/M/m steady state requires rho < 1, got {worst}", rho=worst
        )
    return ms, rhos


def p_zero_vec(ms: Sequence[int], rhos: Sequence[float]) -> np.ndarray:
    """Empty-system probabilities ``p_{i,0}`` for all servers at once.

    Vectorized transcription of :func:`repro.core.erlang.p_zero`: the
    scaled term recurrence ``t_k = t_{k-1} a_i / k`` runs over a shared
    ``k`` axis with per-server masks (server ``i`` stops growing at
    ``k = m_i - 1``), and per-server rescale events fold into a
    log-scale accumulator, so the kernel neither overflows nor loses
    precision for thousands of blades per server.
    """
    ms, rhos = _as_server_arrays(ms, rhos)
    a = ms * rhos
    term = np.ones_like(rhos)
    total = np.ones_like(rhos)
    log_scale = np.zeros_like(rhos)
    for k in range(1, int(ms.max())):
        growing = ms > k
        np.multiply(term, a / k, out=term, where=growing)
        total[growing] += term[growing]
        big = total > _RESCALE_AT
        if big.any():
            scale = total[big]
            term[big] /= scale
            total[big] = 1.0
            log_scale[big] += np.log(scale)
    # Tail term a^m/m! / (1 - rho): one more recurrence step from
    # a^{m-1}/(m-1)! covers every m >= 1.
    term_m = term * a / ms
    total = total + term_m / (1.0 - rhos)
    return np.exp(-log_scale) / total


def _waiting_factor_from_p0(
    ms: np.ndarray, rhos: np.ndarray, p0: np.ndarray
) -> np.ndarray:
    """``p_0 m^{m-1}/m! rho^m/(1-rho)^2`` given precomputed ``p_0``."""
    out = np.zeros_like(rhos)
    pos = rhos > 0.0
    if pos.any():
        m = ms[pos].astype(float)
        r = rhos[pos]
        log_shape = (m - 1.0) * np.log(m) - gammaln(m + 1.0) + m * np.log(r)
        out[pos] = p0[pos] * np.exp(log_shape) / (1.0 - r) ** 2
    return out


def waiting_factor_vec(ms: Sequence[int], rhos: Sequence[float]) -> np.ndarray:
    """Non-priority waiting terms ``W_i / xbar_i`` for all servers at once.

    Vectorized :func:`repro.core.response.waiting_factor`: the
    ``m^{m-1}/m! * rho^m`` shape factor is evaluated in log space
    (``gammaln`` instead of factorials).
    """
    ms, rhos = _as_server_arrays(ms, rhos)
    return _waiting_factor_from_p0(ms, rhos, p_zero_vec(ms, rhos))


def _dp_zero_drho_vec(
    ms: np.ndarray, rhos: np.ndarray, p0: np.ndarray
) -> np.ndarray:
    """Batched :func:`repro.core.erlang.dp_zero_drho` (given ``p_0``).

    Mirrors the scalar scaled term recurrence
    ``u_{k+1} = u_k a / k`` for the head sum and the log-space tail.
    """
    a = ms * rhos
    mf = ms.astype(float)
    # Head sum: sum_{k=1}^{m-1} m^k rho^{k-1}/(k-1)!; k = 1 term is m
    # (only present for m >= 2).
    s = np.where(ms >= 2, mf, 0.0)
    u = mf.copy()
    for k in range(2, int(ms.max())):
        growing = ms > k
        np.multiply(u, a / (k - 1), out=u, where=growing)
        s[growing] += u[growing]
    # Tail: m^m/m! * rho^{m-1} (m - (m-1) rho) / (1-rho)^2, in log space.
    tail = np.zeros_like(rhos)
    pos = rhos > 0.0
    if pos.any():
        m = mf[pos]
        r = rhos[pos]
        log_tail = m * np.log(m) - gammaln(m + 1.0) + (m - 1.0) * np.log(r)
        tail[pos] = np.exp(log_tail) * (m - (m - 1.0) * r) / (1.0 - r) ** 2
    zero = ~pos
    if zero.any():
        tail[zero] = np.where(ms[zero] == 1, 1.0, 0.0)
    # m = 1 closed form: p0 = 1 - rho has no head sum and tail 1/(1-rho)^2.
    m1 = ms == 1
    if m1.any():
        s[m1] = 0.0
        tail[m1] = 1.0 / (1.0 - rhos[m1]) ** 2
    return -p0 * p0 * (s + tail)


def _d_response_drho_vec(
    ms: np.ndarray,
    xbars: np.ndarray,
    rhos: np.ndarray,
    rho_specials: np.ndarray,
    disc: Discipline,
    p0: np.ndarray,
) -> np.ndarray:
    """Batched :func:`repro.core.response.d_generic_response_time_drho`."""
    out = np.zeros_like(rhos)
    pos = rhos > 0.0
    if pos.any():
        mi = ms[pos]
        m = mi.astype(float)
        r = rhos[pos]
        c = np.exp((m - 1.0) * np.log(m) - gammaln(m + 1.0))
        dp0 = _dp_zero_drho_vec(mi, r, p0[pos])
        term1 = dp0 * r**mi / (1.0 - r) ** 2
        term2 = p0[pos] * r ** (mi - 1) * (m - (m - 2.0) * r) / (1.0 - r) ** 3
        out[pos] = xbars[pos] * c * (term1 + term2)
        if disc is Discipline.PRIORITY:
            out[pos] /= 1.0 - rho_specials[pos]
    zero = ~pos
    if zero.any():
        # rho = 0 limit: slope xbar for m = 1, zero otherwise.
        out[zero] = np.where(ms[zero] == 1, xbars[zero], 0.0)
    return out


def marginal_cost_vec(
    ms: Sequence[int],
    xbars: Sequence[float],
    special_rates: Sequence[float],
    generic_rates: Sequence[float],
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
) -> np.ndarray:
    """Batched paper marginal costs ``dT'/d lambda'_i`` (Eq. (1) LHS).

    Evaluates :func:`repro.core.objective.marginal_cost` for every
    server in one NumPy pass; agrees with the scalar implementation to
    floating-point round-off on the stability region and raises
    :class:`~repro.core.exceptions.SaturationError` when any server is
    at or beyond ``rho_i = 1``.
    """
    if not (math.isfinite(total_rate) and total_rate > 0.0):
        raise ParameterError(f"total_rate must be > 0, got {total_rate!r}")
    xbars = np.asarray(xbars, dtype=float)
    specials = np.asarray(special_rates, dtype=float)
    lams = np.asarray(generic_rates, dtype=float)
    if np.any(lams < 0.0):
        raise ParameterError("generic rates must be >= 0")
    ms_arr = np.asarray(ms, dtype=np.int64)
    rho = (lams + specials) * xbars / ms_arr
    rho_g = lams * xbars / ms_arr
    rho_s = specials * xbars / ms_arr
    ms_arr, rho = _as_server_arrays(ms_arr, rho)
    disc = Discipline.coerce(discipline)
    p0 = p_zero_vec(ms_arr, rho)
    w = _waiting_factor_from_p0(ms_arr, rho, p0)
    if disc is Discipline.PRIORITY:
        w = w / (1.0 - rho_s)
    t = xbars * (1.0 + w)
    dt = _d_response_drho_vec(ms_arr, xbars, rho, rho_s, disc, p0)
    return (t + rho_g * dt) / total_rate


def find_lambda_batched(
    ms: Sequence[int],
    xbars: Sequence[float],
    special_rates: Sequence[float],
    total_rate: float,
    phi: float,
    discipline: Discipline | str = Discipline.FCFS,
    tol: float = DEFAULT_TOL,
    lo: np.ndarray | None = None,
    hi: np.ndarray | None = None,
) -> np.ndarray:
    """Batched Fig. 2: every server's ``lambda'_i(phi)`` simultaneously.

    All per-server brackets advance together: each sweep evaluates one
    vectorized :func:`marginal_cost_vec` at the current midpoints and
    halves every unconverged interval, so the whole group costs
    ``O(log(max_cap / tol))`` sweeps.  Semantics match the scalar
    :func:`~repro.core.bisection.find_lambda_i`:

    * a server whose zero-load marginal already exceeds ``phi``
      receives zero rate (the water-filling case),
    * a server whose marginal stays below ``phi`` even at the stability
      boundary converges to ``(1 - eps)(m_i/xbar_i - lambda''_i)``.

    Parameters
    ----------
    lo, hi:
        Optional per-server root bounds.  ``lambda'_i(phi)`` is
        non-decreasing in ``phi``, so rates already computed at a
        smaller (larger) multiplier bound the roots from below (above);
        the outer bisection of :func:`solve_vectorized` threads its
        bracket-endpoint rates through here, collapsing the per-server
        search intervals as the multiplier interval narrows.  Both are
        padded by ``tol`` (the accuracy of previously computed rates)
        and clipped to the stability region.
    """
    if tol <= 0.0:
        raise ParameterError(f"tol must be > 0, got {tol}")
    disc = Discipline.coerce(discipline)
    ms = np.asarray(ms, dtype=np.int64)
    xbars = np.asarray(xbars, dtype=float)
    specials = np.asarray(special_rates, dtype=float)
    n = ms.shape[0]
    caps = ms / xbars - specials
    hard_caps = (1.0 - STABILITY_MARGIN) * caps

    zeros = np.zeros(n)
    g0 = marginal_cost_vec(ms, xbars, specials, zeros, total_rate, disc)
    active = (caps > 0.0) & (g0 < phi)
    if not active.any():
        return zeros

    lb = np.zeros(n)
    ub = np.where(active, hard_caps, 0.0)
    if lo is not None:
        lb = np.clip(np.asarray(lo, dtype=float) - tol, 0.0, None)
    if hi is not None:
        ub = np.where(
            active,
            np.minimum(np.asarray(hi, dtype=float) + tol, hard_caps),
            0.0,
        )
    lb = np.minimum(lb, ub)
    # Fig. 2 lines (6)-(7): a server whose marginal stays below phi even
    # at its upper bound is pinned there *exactly* (the scalar code
    # returns hard_cap, not hard_cap - tol/2).  Without this the summed
    # rates fall short of the capacity by ~n*tol/2 and the outer
    # bracketing can never reach near-saturation totals.
    g_ub = marginal_cost_vec(ms, xbars, specials, ub, total_rate, disc)
    lb = np.where(active & (g_ub < phi), ub, lb)
    sweeps = 0
    for _ in range(MAX_ITER):
        if float((ub - lb).max()) <= tol:
            break
        sweeps += 1
        mid = 0.5 * (lb + ub)
        g = marginal_cost_vec(ms, xbars, specials, mid, total_rate, disc)
        go_up = active & (g < phi)
        lb = np.where(go_up, mid, lb)
        ub = np.where(active & ~go_up, mid, ub)
    else:  # pragma: no cover - defensive
        raise ConvergenceError("find_lambda_batched failed to converge")
    o = get_obs()
    if o.enabled:
        o.registry.histogram(
            "repro_inner_sweeps",
            "Batched bisection sweeps per inner solve (all servers at once)",
            lo=1.0,
            hi=1024.0,
            buckets=10,
        ).observe(max(sweeps, 1))
    return np.where(active, 0.5 * (lb + ub), 0.0)


def _solve_vectorized(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
    tol: float = DEFAULT_TOL,
    phi_hint: float | None = None,
) -> LoadDistributionResult:
    """Optimal load distribution via the batched nested bisection.

    Drop-in replacement for
    :func:`~repro.core.bisection.calculate_t_prime` (same algorithm,
    same tolerances, same results to well below 1e-9 per server) whose
    inner step is :func:`find_lambda_batched`; registered as
    ``method="vectorized"`` in the solver registry — reach it through
    ``repro.solve(..., method="vectorized")``.

    Parameters
    ----------
    phi_hint:
        Optional warm start for the multiplier bracket, typically the
        converged ``phi`` of a neighbouring sweep point (see
        :func:`repro.api.solve_sweep`).
    """
    disc = Discipline.coerce(discipline)
    group.check_feasible(total_rate)
    if tol <= 0.0:
        raise ParameterError(f"tol must be > 0, got {tol}")
    ms = group.sizes
    xbars = group.xbars
    specials = group.special_rates
    evals = 0
    # lambda'_i(phi) is non-decreasing in phi, so the rates computed at
    # the current multiplier bracket endpoints bound the per-server
    # roots for every phi inside the bracket.  Remember each
    # evaluation's rates so the bisection phase can thread them back
    # into find_lambda_batched, collapsing the inner search intervals
    # as the outer bracket narrows.
    seen: dict[float, np.ndarray] = {}

    def rates_for(
        phi: float,
        lo: np.ndarray | None = None,
        hi: np.ndarray | None = None,
    ) -> np.ndarray:
        nonlocal evals
        evals += 1
        rates = find_lambda_batched(
            ms, xbars, specials, total_rate, phi, disc, tol, lo=lo, hi=hi
        )
        seen[phi] = rates
        return rates

    def sum_at(phi: float) -> float:
        return float(rates_for(phi).sum())

    o = get_obs()
    lb, ub, iterations = _bracket_phi(sum_at, total_rate, phi_hint)
    r_lo = seen.get(lb, np.zeros(ms.shape[0]))
    r_hi = seen.get(ub)
    if r_hi is None:
        r_hi = rates_for(ub)
    phi_tol = tol * max(1.0, ub)
    for _ in range(MAX_ITER):
        if ub - lb <= phi_tol:
            break
        iterations += 1
        middle = 0.5 * (lb + ub)
        if o.enabled:
            with o.tracer.span(
                "solve.outer", iter=iterations, phi_lo=lb, phi_hi=ub
            ) as sp:
                before = evals
                r_mid = rates_for(middle, lo=r_lo, hi=r_hi)
                sp.note(inner_calls=evals - before, sum_rates=float(r_mid.sum()))
        else:
            r_mid = rates_for(middle, lo=r_lo, hi=r_hi)
        if float(r_mid.sum()) < total_rate:
            lb, r_lo = middle, r_mid
        else:
            ub, r_hi = middle, r_mid
    phi = 0.5 * (lb + ub)

    rates = rates_for(phi, lo=r_lo, hi=r_hi)
    if rates.sum() == 0.0:
        # Same degenerate-band fallback as the scalar transcription.
        phi = ub
        rates = rates_for(phi, hi=r_hi)
    hard_caps = (1.0 - STABILITY_MARGIN) * group.spare_capacities
    rates = settle_residual(rates, total_rate, hard_caps)
    return LoadDistributionResult(
        generic_rates=rates,
        mean_response_time=group.mean_response_time(rates, disc),
        phi=phi,
        discipline=disc,
        method="vectorized-bisection",
        utilizations=group.utilizations(rates),
        per_server_response_times=group.per_server_response_times(rates, disc),
        iterations=iterations,
        converged=True,
        metadata={"inner_solver_calls": evals},
    )


def solve_vectorized(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
    tol: float = DEFAULT_TOL,
    phi_hint: float | None = None,
) -> LoadDistributionResult:
    """Optimal load distribution via the batched nested bisection.

    .. deprecated:: 1.1
        Call :func:`repro.solve` with ``method="vectorized"`` instead;
        it returns the same numbers through the shared dispatch path
        (and its solve therefore shows up in traces and metrics).
    """
    warnings.warn(
        'solve_vectorized() is deprecated; use repro.solve(servers, lam, '
        'method="vectorized")',
        DeprecationWarning,
        stacklevel=2,
    )
    return _solve_vectorized(
        group, total_rate, discipline, tol=tol, phi_hint=phi_hint
    )
