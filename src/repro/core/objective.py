"""Objective function and Lagrange/KKT machinery for the optimization.

The paper minimizes the mean generic-task response time

.. math::

    T'(\\lambda'_1, ..., \\lambda'_n)
      = \\sum_i \\frac{\\lambda'_i}{\\lambda'} T'_i(\\lambda'_i)

subject to ``sum_i lambda'_i = lambda'`` and per-server stability
``lambda'_i < m_i/xbar_i - lambda''_i``.  The method of Lagrange
multipliers yields the stationarity condition (paper Eq. (1))

.. math::

    \\frac{\\partial T'}{\\partial \\lambda'_i}
      = \\frac{1}{\\lambda'}
        \\left(T'_i + \\rho'_i \\frac{\\partial T'_i}{\\partial \\rho_i}\\right)
      = \\phi .

This module implements that *marginal cost* ``partial T'/partial
lambda'_i`` as a standalone function of a single server's generic rate
— the quantity both the paper's bisection (Fig. 2) and our
brentq-based KKT solver drive to the common multiplier ``phi`` — plus
the full objective and gradient used by the NLP solver and by the
verification tests.

``T'`` is convex in the rate vector (each ``lambda'_i T'_i(lambda'_i)``
is a convex univariate function on its stability interval), so any
point satisfying the first-order condition is the global optimum.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .exceptions import ParameterError
from .response import (
    Discipline,
    d_generic_response_time_drho,
    generic_response_time_rho,
)
from .server import BladeServerGroup

__all__ = [
    "marginal_cost",
    "marginal_cost_at_zero",
    "objective",
    "gradient",
    "server_marginal",
]


def server_marginal(
    m: int,
    xbar: float,
    special_rate: float,
    generic_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
) -> float:
    """Per-server marginal ``T'_i + rho'_i dT'_i/d rho_i``.

    This is ``lambda' * dT'/d lambda'_i``: the rate of change of the
    *sum* ``sum_j lambda'_j T'_j`` with respect to server ``i``'s
    generic rate.  It is continuous, strictly increasing in
    ``generic_rate`` on the stability interval, and diverges at the
    saturation point — the properties the bisection searches rely on.
    """
    if generic_rate < 0.0:
        raise ParameterError(f"generic_rate must be >= 0, got {generic_rate}")
    rho = (generic_rate + special_rate) * xbar / m
    rho_g = generic_rate * xbar / m
    rho_s = special_rate * xbar / m
    t = generic_response_time_rho(m, xbar, rho, rho_s, discipline)
    dt = d_generic_response_time_drho(m, xbar, rho, rho_s, discipline)
    return t + rho_g * dt


def marginal_cost(
    m: int,
    xbar: float,
    special_rate: float,
    generic_rate: float,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
) -> float:
    """The paper's ``partial T' / partial lambda'_i`` (Eq. (1) LHS).

    Equal to :func:`server_marginal` divided by the total generic rate
    ``lambda'``.  The optimizer equates this across servers.
    """
    if not (math.isfinite(total_rate) and total_rate > 0.0):
        raise ParameterError(f"total_rate must be > 0, got {total_rate!r}")
    return (
        server_marginal(m, xbar, special_rate, generic_rate, discipline)
        / total_rate
    )


def marginal_cost_at_zero(
    m: int,
    xbar: float,
    special_rate: float,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
) -> float:
    """Marginal cost of the first infinitesimal unit of generic load.

    With ``lambda'_i = 0`` the ``rho'_i dT'_i/d rho`` term vanishes and
    the marginal reduces to ``T'_i(rho''_i) / lambda'`` — the response
    time the server would give a lone generic task on top of its
    special load.  A server only receives generic load when the group
    multiplier ``phi`` exceeds this threshold, which is how the
    water-filling structure (and servers parked at zero) emerges.
    """
    return marginal_cost(m, xbar, special_rate, 0.0, total_rate, discipline)


def objective(
    group: BladeServerGroup,
    generic_rates: Sequence[float],
    discipline: Discipline | str = Discipline.FCFS,
) -> float:
    """The objective ``T'`` for an explicit distribution vector.

    Delegates to :meth:`BladeServerGroup.mean_response_time`; provided
    as a free function for the NLP solver and tests.
    """
    return group.mean_response_time(generic_rates, discipline)


def gradient(
    group: BladeServerGroup,
    generic_rates: Sequence[float],
    discipline: Discipline | str = Discipline.FCFS,
) -> np.ndarray:
    """Analytic gradient ``[dT'/d lambda'_1, ..., dT'/d lambda'_n]``.

    Uses the paper's chain-rule decomposition
    ``dT'/d lambda'_i = (T'_i + rho'_i dT'_i/d rho_i) / lambda'``
    where ``lambda'`` is the (fixed) total of the supplied vector.
    """
    rates = np.asarray(generic_rates, dtype=float)
    if rates.shape != (group.n,):
        raise ParameterError(
            f"expected {group.n} generic rates, got shape {rates.shape}"
        )
    total = float(rates.sum())
    if total <= 0.0:
        raise ParameterError("total generic rate must be positive")
    out = np.empty(group.n)
    for i, srv in enumerate(group.servers):
        out[i] = marginal_cost(
            srv.size,
            srv.xbar(group.rbar),
            srv.special_rate,
            float(rates[i]),
            total,
            discipline,
        )
    return out
