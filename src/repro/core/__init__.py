"""Core queueing model and optimizers — the paper's primary contribution.

Public surface:

* :class:`~repro.core.mmm.MMmQueue` — steady-state M/M/m metrics.
* :class:`~repro.core.server.BladeServer`,
  :class:`~repro.core.server.BladeServerGroup` — the domain model.
* :func:`~repro.core.solvers.optimize_load_distribution` — the solver
  façade (paper bisection / KKT / SLSQP / closed forms / batched
  vectorized bisection).
* :class:`~repro.core.response.Discipline` — FCFS vs. priority.
* :class:`~repro.core.result.LoadDistributionResult` — solver output.
"""

from .bisection import calculate_t_prime, find_lambda_i, settle_residual
from .bounds import bound_gap, lower_bound, upper_bound
from .constrained import solve_capped
from .distributions import (
    GroupResponseTimeDistribution,
    ResponseTimeDistribution,
    WaitingTimeDistribution,
)
from .economics import (
    AdmissionResult,
    LinearDecayRevenue,
    optimize_admission,
    profit_rate,
)
from .multiclass import (
    MulticlassStation,
    generic_response_time_multiclass,
    multiclass_waiting_times,
)
from .power import PowerAllocationResult, optimize_speeds_under_power
from .closed_form import (
    solve_closed_form,
    solve_closed_form_fcfs,
    solve_closed_form_priority,
)
from .erlang import erlang_b, erlang_c, p_k, p_zero
from .exceptions import (
    ConvergenceError,
    InfeasibleError,
    ParameterError,
    ReproError,
    SaturationError,
    SimulationError,
)
from .kkt import solve_kkt
from .mmm import MMmQueue, mmm_mean_queue_length, mmm_response_time
from .nlp import solve_nlp
from .objective import gradient, marginal_cost, objective, server_marginal
from .response import (
    Discipline,
    d_generic_response_time_drho,
    generic_response_time,
    generic_response_time_rho,
    generic_waiting_time,
    special_waiting_time,
    waiting_factor,
)
from .result import LoadDistributionResult
from .server import BladeServer, BladeServerGroup
from .solvers import available_methods, optimize_load_distribution
from .vectorized import (
    find_lambda_batched,
    marginal_cost_vec,
    p_zero_vec,
    solve_vectorized,
    waiting_factor_vec,
)

__all__ = [
    "AdmissionResult",
    "BladeServer",
    "BladeServerGroup",
    "GroupResponseTimeDistribution",
    "LinearDecayRevenue",
    "MulticlassStation",
    "bound_gap",
    "lower_bound",
    "upper_bound",
    "optimize_admission",
    "profit_rate",
    "PowerAllocationResult",
    "ResponseTimeDistribution",
    "WaitingTimeDistribution",
    "generic_response_time_multiclass",
    "multiclass_waiting_times",
    "optimize_speeds_under_power",
    "solve_capped",
    "ConvergenceError",
    "Discipline",
    "InfeasibleError",
    "LoadDistributionResult",
    "MMmQueue",
    "ParameterError",
    "ReproError",
    "SaturationError",
    "SimulationError",
    "available_methods",
    "calculate_t_prime",
    "d_generic_response_time_drho",
    "erlang_b",
    "erlang_c",
    "find_lambda_batched",
    "find_lambda_i",
    "generic_response_time",
    "generic_response_time_rho",
    "generic_waiting_time",
    "gradient",
    "marginal_cost",
    "marginal_cost_vec",
    "mmm_mean_queue_length",
    "mmm_response_time",
    "objective",
    "optimize_load_distribution",
    "p_k",
    "p_zero",
    "p_zero_vec",
    "server_marginal",
    "settle_residual",
    "solve_closed_form",
    "solve_closed_form_fcfs",
    "solve_closed_form_priority",
    "solve_kkt",
    "solve_nlp",
    "solve_vectorized",
    "special_waiting_time",
    "waiting_factor",
    "waiting_factor_vec",
]
