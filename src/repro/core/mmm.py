"""Complete steady-state metric set for an M/M/m queueing station.

The paper models every blade server as an M/M/m queue and derives, in
Section 3, the full chain of steady-state quantities leading to the
average task response time.  :class:`MMmQueue` packages that chain:

=================  ====================================================
attribute          paper quantity
=================  ====================================================
``utilization``    :math:`\\rho = \\lambda \\bar{x} / m`
``p0``             :math:`p_0`
``prob_queueing``  :math:`P_q = p_m / (1 - \\rho)`
``mean_in_system`` :math:`\\bar{N} = m\\rho + \\rho P_q / (1-\\rho)`
``mean_in_queue``  :math:`\\bar{N}_q = \\rho P_q / (1-\\rho)`
``response_time``  :math:`T = \\bar{x}(1 + P_q / (m(1-\\rho)))`
``waiting_time``   :math:`W = T - \\bar{x} = W_0 / (1-\\rho)`
``w_star``         :math:`W^* = \\bar{x}/m` (next-completion time)
``w_zero``         :math:`W_0 = P_q W^*` (time until a blade frees)
=================  ====================================================

Little's law ties the set together (``N = lambda T``, ``N_q = lambda W``)
and the property-based test suite verifies those identities across the
whole parameter space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as _np

from .erlang import erlang_c, p_k, p_zero
from .exceptions import ParameterError, SaturationError

__all__ = ["MMmQueue", "mmm_response_time", "mmm_mean_queue_length"]


@dataclass(frozen=True)
class MMmQueue:
    """Steady-state M/M/m station with ``m`` blades of mean service ``xbar``.

    Parameters
    ----------
    m:
        Number of identical server blades, ``m >= 1``.
    xbar:
        Mean task execution time on one blade,
        ``xbar = rbar / s`` where ``rbar`` is the mean execution
        requirement (giga-instructions) and ``s`` the blade speed
        (giga-instructions per second).  Must be positive.
    arrival_rate:
        Total Poisson arrival rate ``lambda`` into the station.  The
        station is stable only when ``lambda * xbar / m < 1``.

    Raises
    ------
    ParameterError
        If any argument is outside its domain.
    SaturationError
        If the resulting utilization is at or above one.
    """

    m: int
    xbar: float
    arrival_rate: float
    _rho: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if (
            not isinstance(self.m, (int, _np.integer))
            or isinstance(self.m, bool)
            or self.m < 1
        ):
            raise ParameterError(f"m must be a positive int, got {self.m!r}")
        object.__setattr__(self, "m", int(self.m))
        if not (math.isfinite(self.xbar) and self.xbar > 0.0):
            raise ParameterError(f"xbar must be finite and > 0, got {self.xbar!r}")
        if not (math.isfinite(self.arrival_rate) and self.arrival_rate >= 0.0):
            raise ParameterError(
                f"arrival_rate must be finite and >= 0, got {self.arrival_rate!r}"
            )
        rho = self.arrival_rate * self.xbar / self.m
        if rho >= 1.0:
            raise SaturationError(
                f"station saturated: rho = {rho:.6g} >= 1 "
                f"(lambda={self.arrival_rate}, xbar={self.xbar}, m={self.m})",
                rho=rho,
            )
        object.__setattr__(self, "_rho", rho)

    # -- primitive quantities -------------------------------------------------

    @property
    def utilization(self) -> float:
        """Per-blade utilization ``rho = lambda xbar / m`` (in [0, 1))."""
        return self._rho

    @property
    def service_rate(self) -> float:
        """Per-blade service rate ``mu = 1 / xbar``."""
        return 1.0 / self.xbar

    @property
    def capacity(self) -> float:
        """Maximum sustainable arrival rate ``m / xbar`` of the station."""
        return self.m / self.xbar

    @property
    def p0(self) -> float:
        """Probability that the station is empty."""
        return p_zero(self.m, self._rho)

    def p(self, k: int) -> float:
        """Probability of exactly ``k`` tasks in the station."""
        return p_k(self.m, self._rho, k)

    @property
    def prob_queueing(self) -> float:
        """Erlang-C probability that an arrival must wait (``P_q``)."""
        return erlang_c(self.m, self._rho)

    # -- derived quantities ----------------------------------------------------

    @property
    def w_star(self) -> float:
        """Expected time to the next task completion, ``W* = xbar / m``.

        The minimum of ``m`` i.i.d. exponentials with mean ``xbar`` —
        valid at any time by memorylessness, which is the keystone of
        the paper's priority-waiting-time argument (Theorem 2).
        """
        return self.xbar / self.m

    @property
    def w_zero(self) -> float:
        """Expected time until a blade becomes available, ``W0 = P_q W*``."""
        return self.prob_queueing * self.w_star

    @property
    def waiting_time(self) -> float:
        """Mean time in the waiting queue, ``W = W0 / (1 - rho)``."""
        return self.w_zero / (1.0 - self._rho)

    @property
    def response_time(self) -> float:
        """Mean response time ``T = xbar + W``."""
        return self.xbar + self.waiting_time

    @property
    def mean_in_queue(self) -> float:
        """Mean number waiting, ``N_q = rho P_q / (1 - rho)``."""
        return self._rho * self.prob_queueing / (1.0 - self._rho)

    @property
    def mean_in_system(self) -> float:
        """Mean number in the station, ``N = m rho + N_q``."""
        return self.m * self._rho + self.mean_in_queue

    @property
    def mean_busy_blades(self) -> float:
        """Mean number of busy blades, ``m rho`` (= offered load)."""
        return self.m * self._rho

    # -- convenience -----------------------------------------------------------

    def with_arrival_rate(self, arrival_rate: float) -> "MMmQueue":
        """Return a copy of this station evaluated at a new arrival rate."""
        return MMmQueue(self.m, self.xbar, arrival_rate)

    def distribution(self, k_max: int) -> list[float]:
        """Steady-state probabilities ``[p_0, ..., p_{k_max}]``."""
        if k_max < 0:
            raise ParameterError(f"k_max must be >= 0, got {k_max}")
        return [self.p(k) for k in range(k_max + 1)]


def mmm_response_time(m: int, xbar: float, arrival_rate: float) -> float:
    """Functional shortcut for ``MMmQueue(m, xbar, arrival_rate).response_time``."""
    return MMmQueue(m, xbar, arrival_rate).response_time


def mmm_mean_queue_length(m: int, xbar: float, arrival_rate: float) -> float:
    """Functional shortcut for ``MMmQueue(...).mean_in_queue``."""
    return MMmQueue(m, xbar, arrival_rate).mean_in_queue
