"""Load distribution under per-server rate caps.

Operators often cannot route arbitrary traffic to a server even when
queueing theory says they should — network bandwidth to the chassis,
software license limits, or tenancy agreements cap the generic rate a
server may receive.  This module extends the paper's optimizer with
explicit upper bounds ``lambda'_i <= c_i``.

The KKT structure barely changes: with box constraints the optimal rate
of server ``i`` at multiplier ``phi`` is the *clipped* water-filling
value

.. math::

    \\lambda'_i(\\phi) = \\mathrm{clip}\\big(g_i^{-1}(\\phi),\\ 0,\\ c_i\\big),

where ``g_i`` is the marginal cost; servers pinned at their cap carry a
marginal *below* the common ``phi`` (they would love more traffic but
may not take it), mirroring the servers pinned at zero whose marginal
sits above ``phi``.  The group total remains continuous and
non-decreasing in ``phi``, so the same outer Brent search applies.  An
instance is feasible iff ``total_rate <= sum_i min(c_i, spare_i)``
(strictly below in the spare-capacity component).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.optimize import brentq

from .exceptions import ConvergenceError, InfeasibleError, ParameterError
from .kkt import rate_for_multiplier
from .objective import marginal_cost
from .response import Discipline
from .result import LoadDistributionResult
from .server import BladeServerGroup

__all__ = ["solve_capped"]

_STABILITY_MARGIN = 1e-13
_MAX_DOUBLINGS = 4000


def solve_capped(
    group: BladeServerGroup,
    total_rate: float,
    caps: Sequence[float],
    discipline: Discipline | str = Discipline.FCFS,
    xtol: float = 1e-13,
) -> LoadDistributionResult:
    """Minimize ``T'`` subject to ``sum = total_rate`` and ``rate_i <= caps_i``.

    Parameters
    ----------
    group, total_rate, discipline:
        As for :func:`~repro.core.kkt.solve_kkt`.
    caps:
        Per-server upper bounds on the generic rate (``inf`` allowed).
        Effective bounds are ``min(cap_i, spare_capacity_i)``.

    Raises
    ------
    InfeasibleError
        If the capped instance cannot absorb ``total_rate``.
    """
    disc = Discipline.coerce(discipline)
    group.check_feasible(total_rate)
    caps_arr = np.asarray(caps, dtype=float)
    if caps_arr.shape != (group.n,):
        raise ParameterError(
            f"expected {group.n} caps, got shape {caps_arr.shape}"
        )
    if np.any(np.isnan(caps_arr)) or np.any(caps_arr < 0.0):
        raise ParameterError("caps must be >= 0 (inf allowed, nan not)")
    # Effective bound: the cap, the stability boundary, whichever binds.
    spare = group.spare_capacities * (1.0 - _STABILITY_MARGIN)
    bounds = np.minimum(caps_arr, spare)
    if float(bounds.sum()) < total_rate:
        raise InfeasibleError(
            f"caps admit at most {bounds.sum():.6g} < requested "
            f"{total_rate:.6g}",
            total_rate=total_rate,
            capacity=float(bounds.sum()),
        )
    ms = group.sizes
    xbars = group.xbars
    specials = group.special_rates
    n = group.n

    def rates_for(phi: float) -> np.ndarray:
        out = np.empty(n)
        for i in range(n):
            r = rate_for_multiplier(
                int(ms[i]),
                float(xbars[i]),
                float(specials[i]),
                total_rate,
                phi,
                disc,
            )
            out[i] = min(r, bounds[i])
        return out

    def excess(phi: float) -> float:
        return float(rates_for(phi).sum()) - total_rate

    phi_lo = min(
        marginal_cost(
            int(ms[i]), float(xbars[i]), float(specials[i]), 0.0, total_rate, disc
        )
        for i in range(n)
    )
    phi_hi = max(phi_lo, 1e-9)
    iterations = 0
    for _ in range(_MAX_DOUBLINGS):
        iterations += 1
        if excess(phi_hi) >= 0.0:
            break
        phi_hi *= 2.0
    else:
        raise ConvergenceError("solve_capped could not bracket the multiplier")

    phi = float(
        brentq(excess, phi_lo * (1.0 - 1e-12), phi_hi, xtol=xtol, rtol=8.9e-16)
    )
    rates = rates_for(phi)
    # Distribute the Brent residual over the *unclamped* servers only —
    # capped servers must stay exactly at their caps.
    residual = total_rate - float(rates.sum())
    if abs(residual) > 0.0:
        free = rates < bounds * (1.0 - 1e-12)
        if free.any():
            weights = rates[free]
            if weights.sum() > 0.0:
                rates[free] += residual * weights / weights.sum()
            else:
                rates[free] += residual / int(free.sum())
            rates = np.minimum(rates, bounds)
    return LoadDistributionResult(
        generic_rates=rates,
        mean_response_time=group.mean_response_time(rates, disc),
        phi=phi,
        discipline=disc,
        method="kkt-capped",
        utilizations=group.utilizations(rates),
        per_server_response_times=group.per_server_response_times(rates, disc),
        iterations=iterations,
        converged=True,
        metadata={"caps": caps_arr.tolist(), "capped": (rates >= bounds * (1 - 1e-9)).tolist()},
    )
