"""K-class non-preemptive priority on an M/M/m blade server.

Theorem 2 of the paper handles exactly two classes (special above
generic).  Its proof technique — the memoryless next-completion time
``W* = xbar/m`` plus Little's-law bookkeeping of who overtakes whom —
extends verbatim to ``K`` priority levels, giving the classical
Cobham-style recursion for identical exponential classes:

.. math::

    W_k = \\frac{W_0}{(1 - \\sigma_{k-1})(1 - \\sigma_k)}, \\qquad
    \\sigma_k = \\sum_{j \\le k} \\rho_j,

where class 1 is the highest priority, ``W_0 = P_q W*`` is the expected
time until a blade frees, and ``sigma_K = rho`` is the total
utilization.  Setting ``K = 2`` recovers the paper's ``W''`` (class 1)
and ``W'`` (class 2) exactly — asserted in the tests — and the
class-weighted mean equals the FCFS wait (work conservation).

This enables a strictly more general load-distribution problem than the
paper's: each server may carry a whole *ladder* of dedicated classes,
with generic traffic slotted at any priority level.
:func:`generic_response_time_multiclass` gives the generic-task ``T'``
for that setting, and its derivative is shaped exactly like the paper's
(the ``rho``-dependent factor is still ``rho^m / (1-rho)^2`` scaled by
constants in ``rho``), so the standard solvers apply unchanged via the
:class:`MulticlassServerModel` adapter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .erlang import erlang_c
from .exceptions import ParameterError, SaturationError

__all__ = [
    "MulticlassStation",
    "generic_response_time_multiclass",
    "multiclass_waiting_times",
]


@dataclass(frozen=True)
class MulticlassStation:
    """An M/M/m station carrying ``K`` non-preemptive priority classes.

    Parameters
    ----------
    m:
        Number of blades.
    xbar:
        Mean service time (identical across classes, as in the paper:
        the execution requirement distribution is workload-wide).
    rates:
        Arrival rates per class, **highest priority first**.
    """

    m: int
    xbar: float
    rates: tuple[float, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.m, (int, np.integer)) or isinstance(self.m, bool):
            raise ParameterError(f"m must be an int, got {self.m!r}")
        if self.m < 1:
            raise ParameterError(f"m must be >= 1, got {self.m}")
        if not (math.isfinite(self.xbar) and self.xbar > 0.0):
            raise ParameterError(f"xbar must be finite and > 0, got {self.xbar!r}")
        rates = tuple(float(r) for r in self.rates)
        if not rates:
            raise ParameterError("need at least one class")
        if any(not (math.isfinite(r) and r >= 0.0) for r in rates):
            raise ParameterError(f"rates must be finite and >= 0, got {rates}")
        object.__setattr__(self, "rates", rates)
        if self.utilization >= 1.0:
            raise SaturationError(
                f"total utilization {self.utilization:.6g} >= 1",
                rho=self.utilization,
            )

    @property
    def k(self) -> int:
        """Number of priority classes."""
        return len(self.rates)

    @property
    def total_rate(self) -> float:
        """Aggregate arrival rate over all classes."""
        return sum(self.rates)

    @property
    def utilization(self) -> float:
        """Total utilization ``rho = lambda xbar / m``."""
        return self.total_rate * self.xbar / self.m

    @property
    def cumulative_utilizations(self) -> np.ndarray:
        """``sigma_k``: utilization of classes ``1..k`` for each ``k``."""
        per_class = np.asarray(self.rates) * self.xbar / self.m
        return np.cumsum(per_class)

    @property
    def w_zero(self) -> float:
        """Expected time until a blade frees, ``W_0 = P_q xbar / m``."""
        return erlang_c(self.m, self.utilization) * self.xbar / self.m

    def waiting_times(self) -> np.ndarray:
        """Mean waiting time of each class (highest priority first).

        Implements the generalized Theorem-2 recursion
        ``W_k = W_0 / ((1 - sigma_{k-1})(1 - sigma_k))``.
        """
        sigma = self.cumulative_utilizations
        w0 = self.w_zero
        out = np.empty(self.k)
        prev = 0.0
        for k in range(self.k):
            out[k] = w0 / ((1.0 - prev) * (1.0 - sigma[k]))
            prev = sigma[k]
        return out

    def response_times(self) -> np.ndarray:
        """Mean response time of each class, ``T_k = xbar + W_k``."""
        return self.xbar + self.waiting_times()

    def conservation_gap(self) -> float:
        """|class-weighted mean wait - FCFS wait| (should be ~0).

        Work conservation for non-idling, non-preemptive disciplines
        with a common exponential service law: priorities redistribute
        waiting, they cannot create or destroy it.  Exposed for tests
        and sanity checks.
        """
        total = self.total_rate
        if total == 0.0:
            return 0.0
        w = self.waiting_times()
        blended = float(np.dot(self.rates, w)) / total
        fcfs = self.w_zero / (1.0 - self.utilization)
        return abs(blended - fcfs)


def multiclass_waiting_times(
    m: int, xbar: float, rates: Sequence[float]
) -> np.ndarray:
    """Functional shortcut for :meth:`MulticlassStation.waiting_times`."""
    return MulticlassStation(m, xbar, tuple(rates)).waiting_times()


def generic_response_time_multiclass(
    m: int,
    xbar: float,
    generic_rate: float,
    dedicated_rates: Sequence[float],
    generic_level: int | None = None,
) -> float:
    """Mean generic-task response time with a ladder of dedicated classes.

    Parameters
    ----------
    m, xbar:
        Server size and mean service time.
    generic_rate:
        Arrival rate of the generic class.
    dedicated_rates:
        Rates of the dedicated classes, highest priority first.
    generic_level:
        Index at which the generic class slots into the ladder
        (0 = above everything, ``len(dedicated_rates)`` = bottom, the
        default).  The paper's Theorem 2 is the special case of one
        dedicated class and ``generic_level = 1``.
    """
    dedicated = [float(r) for r in dedicated_rates]
    if generic_level is None:
        generic_level = len(dedicated)
    if not (0 <= generic_level <= len(dedicated)):
        raise ParameterError(
            f"generic_level must be in [0, {len(dedicated)}], got {generic_level}"
        )
    if generic_rate < 0.0:
        raise ParameterError(f"generic_rate must be >= 0, got {generic_rate}")
    ladder = dedicated[:generic_level] + [generic_rate] + dedicated[generic_level:]
    station = MulticlassStation(m, xbar, tuple(ladder))
    return float(station.response_times()[generic_level])
