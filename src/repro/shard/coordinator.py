"""Outer coordinator: the paper's water-filling lifted one level.

The flat optimum equalizes the marginal response-time cost
``g_i(lambda'_i) = phi`` across every un-parked, un-pinned server and
picks ``phi`` so the loads meet the budget ``sum_i lambda'_i = lambda'``
(PAPER.md, Theorem 2 / the KKT stationarity of `core/objective.py`).
Partition the fleet into shards and nothing about that fixed point
changes — the multiplier is *shared*, so:

* **inner problem (per shard)** — at a trial multiplier ``phi``, shard
  ``s`` solves its members' one-dimensional roots
  ``g_i(lambda'_i) = phi`` exactly as the flat Newton backend does, and
  exposes only its aggregate load response

  .. math:: g_s(\\phi) = \\sum_{i \\in s} \\lambda'_i(\\phi),

  a continuous non-decreasing curve (each ``lambda'_i(phi)`` is);

* **outer problem (the coordinator)** — one safeguarded Newton
  iteration on the *shared* multiplier solves the budget equation

  .. math:: F(\\phi) = \\sum_s g_s(\\phi) = \\lambda',

  with analytic slope ``F'(phi) = sum_s g_s'(phi) = sum_free 1/g_i'``
  — term for term the same dual ascent as `core/newton.py`, just
  summed shard-by-shard.

Because the inner roots depend on ``phi`` only through the scalar
comparison ``g_i = phi``, every shard's inner solve at the *same*
multiplier is one batched kernel sweep over the concatenated candidate
servers — the per-shard decomposition costs no extra kernel calls.
Per-shard warm starts (``phi_hint`` as a dict) exploit the vector-phi
form of :func:`repro.core.newton._inner_newton`: each shard's members
are first rooted at that shard's own hinted multiplier in one batched
sweep, seeding the outer loop where the shards last converged.

With pruning off the candidate set is the whole fleet and the fixed
point is *identical* to the flat solve (the test suite asserts
agreement to <= 1e-8 in mean response time); with ``top_k`` pruning the
coordinator solves the same program restricted to the kept candidates
(:mod:`repro.shard.sparse`), and the optimality gap is measured, not
assumed.

Registered as ``method="sharded"`` (warm-startable) on import; the
package ``repro`` imports this module, so ``repro.solve(...,
method="sharded")`` works out of the box.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from ..core.bisection import DEFAULT_TOL, STABILITY_MARGIN, settle_residual
from ..core.exceptions import ConvergenceError, InfeasibleError, ParameterError
from ..core.newton import _inner_newton, marginal_cost_and_slope_vec
from ..core.response import Discipline
from ..core.result import LoadDistributionResult
from ..core.server import BladeServerGroup
from ..core.solvers import register_method
from ..obs import get_obs
from .partition import ShardConfig, ShardPlan, partition_group
from .sparse import candidate_sets

__all__ = ["ShardCoordinator", "resolve_plan", "solve_sharded"]

#: Outer multiplier iterations before declaring failure (matches the
#: flat Newton backend — the outer problems are the same shape).
_MAX_OUTER = 200


class ShardCoordinator:
    """One sharded solve: candidate selection plus the outer dual ascent.

    Instances are cheap, single-use-per-``solve`` helpers: construction
    selects candidates and precomputes the phi-independent thresholds;
    :meth:`solve` runs the outer loop.  :meth:`response` is public so
    tests (and curious readers) can probe the shard load curves
    ``g_s(phi)`` the coordinator equalizes over.
    """

    def __init__(
        self,
        plan: ShardPlan,
        total_rate: float,
        discipline: Discipline | str = Discipline.FCFS,
        tol: float = DEFAULT_TOL,
        live: np.ndarray | None = None,
    ) -> None:
        if tol <= 0.0:
            raise ParameterError(f"tol must be > 0, got {tol}")
        self.plan = plan
        self.group = plan.group
        self.total_rate = float(total_rate)
        self.disc = Discipline.coerce(discipline)
        self.tol = float(tol)
        self.group.check_feasible(self.total_rate)
        if live is None:
            self.live = np.ones(plan.n_shards, dtype=bool)
        else:
            self.live = np.asarray(live, dtype=bool).copy()
            if self.live.shape != (plan.n_shards,):
                raise ParameterError(
                    f"live mask has shape {self.live.shape}, "
                    f"expected ({plan.n_shards},)"
                )
            if not self.live.any():
                raise InfeasibleError("every shard is masked dead")

        kept = candidate_sets(
            plan, self.total_rate, self.disc, plan.config.top_k
        )
        # Failed-over shards contribute no candidates: the masked solve
        # is the same program restricted to the surviving fleet.
        kept = [
            k if self.live[s] else k[:0] for s, k in enumerate(kept)
        ]
        members = [np.asarray(s.members) for s in plan.shards]
        # Concatenated candidate frame: every array below is indexed by
        # candidate position; `shard_of` maps positions to shard runs.
        self.cand = np.concatenate(
            [members[s][kept[s]] for s in range(plan.n_shards)]
        )
        counts = np.array([k.size for k in kept], dtype=np.int64)
        self.starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        self.shard_of = np.repeat(np.arange(plan.n_shards), counts)

        group = self.group
        self.ms = group.sizes.astype(np.int64)[self.cand]
        self.xbars = group.xbars.astype(float)[self.cand]
        self.specials = group.special_rates.astype(float)[self.cand]
        caps = group.spare_capacities[self.cand]
        self.caps = caps
        self.hard_caps = np.where(
            caps > 0.0, (1.0 - STABILITY_MARGIN) * caps, 0.0
        )
        self.zeros = np.zeros(self.cand.size)

        # Same phi-independent thresholds as the flat backend: phi <=
        # g0 parks a candidate, phi > gcap pins it at its hard cap.
        self.g0, _ = marginal_cost_and_slope_vec(
            self.ms, self.xbars, self.specials, self.zeros,
            self.total_rate, self.disc,
        )
        self.gcap, _ = marginal_cost_and_slope_vec(
            self.ms, self.xbars, self.specials, self.hard_caps,
            self.total_rate, self.disc,
        )
        if float(self.hard_caps.sum()) <= self.total_rate:
            # The full group passed check_feasible above, so this only
            # fires when the live mask (or aggressive pruning) removed
            # too much capacity — the caller must shed first.
            raise InfeasibleError(
                f"candidate capacity {float(self.hard_caps.sum()):.6g} cannot "
                f"carry total rate {self.total_rate:.6g} "
                f"({int(self.live.sum())}/{plan.n_shards} shards live)"
            )
        usable = caps > 0.0
        self.phi_floor = float(self.g0[usable].min())
        self.phi_ceil = float(np.nextafter(self.gcap[usable].max(), math.inf))

        self.inner_sweeps = 0
        cap_sum = float(caps.sum())
        self._prev = self.total_rate * np.divide(
            caps, cap_sum, out=np.zeros_like(caps), where=cap_sum > 0.0
        )

    def response(
        self,
        phi: float | np.ndarray,
        lo: np.ndarray | None = None,
        hi: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Shard load responses at multiplier(s) ``phi``.

        ``phi`` is a scalar (the outer loop's shared multiplier) or a
        per-candidate vector (the per-shard warm-start seed).  Returns
        ``(loads, rates, fprime)``: per-shard loads ``g_s(phi)``, the
        underlying per-candidate rates, and the dual slope ``F'(phi)``
        summed over free candidates.  ``lo``/``hi`` are component-wise
        root bounds carried over from rate vectors already computed at
        smaller/larger multipliers.
        """
        lo = self.zeros if lo is None else lo
        hi = self.hard_caps if hi is None else hi
        phis = np.broadcast_to(np.asarray(phi, dtype=float), self.cand.shape)
        active = (self.caps > 0.0) & (self.g0 < phis)
        rates = self.zeros.copy()
        fprime = 0.0
        if active.any():
            pinned = active & (self.gcap < phis)
            free = active & ~pinned
            rates = np.where(pinned, self.hard_caps, 0.0)
            if free.any():
                lb = np.clip(
                    np.where(free, lo - self.tol, 0.0), 0.0, self.hard_caps
                )
                ub = np.where(
                    free, np.minimum(hi + self.tol, self.hard_caps), 0.0
                )
                lb = np.minimum(lb, ub)
                x0 = np.where(free, self._prev, 0.0)
                roots, dg, sweeps = _inner_newton(
                    self.ms, self.xbars, self.specials, self.total_rate,
                    phis, self.disc, self.tol, x0, lb, ub,
                )
                self.inner_sweeps += sweeps
                rates = np.where(free, roots, rates)
                with np.errstate(divide="ignore"):
                    fprime = float(np.where(free, 1.0 / dg, 0.0).sum())
            self._prev = rates
        loads = self._shard_loads(rates)
        return loads, rates, fprime

    def _shard_loads(self, rates: np.ndarray) -> np.ndarray:
        """Per-shard load sums over the candidate frame.

        ``bincount`` rather than ``reduceat``: with an empty candidate
        run (a dead or fully-pruned shard) ``reduceat`` would return the
        element *at* the duplicated start offset instead of zero.
        """
        return np.bincount(
            self.shard_of, weights=rates, minlength=self.plan.n_shards
        )

    def _seed(self, phi_hint) -> float:
        """Outer-loop starting multiplier from ``phi_hint`` (see solve)."""
        phi_seed = float(np.nextafter(self.phi_floor, math.inf))
        if isinstance(phi_hint, Mapping):
            hints = {int(k): float(v) for k, v in phi_hint.items()}
            per_cand = np.array(
                [
                    hints.get(int(s), 0.0)
                    for s in np.arange(self.plan.n_shards)
                ]
            )[self.shard_of]
            usable = np.isfinite(per_cand) & (per_cand > 0.0)
            if not usable.any():
                return 0.0  # fall back to the cold start
            per_cand = np.clip(
                np.where(usable, per_cand, self.phi_floor),
                phi_seed,
                self.phi_ceil,
            )
            # One batched vector-phi sweep roots every shard at its own
            # hinted multiplier; the loads weight the scalar outer seed
            # toward the shards that actually carry traffic.
            loads, _, _ = self.response(per_cand)
            total = float(loads.sum())
            if total > 0.0:
                shard_phi = np.array(
                    [hints.get(s, self.phi_floor) for s in range(len(loads))]
                )
                return float((loads * shard_phi).sum() / total)
            return float(np.median(per_cand))
        if (
            phi_hint is not None
            and math.isfinite(phi_hint)
            and phi_seed <= phi_hint <= self.phi_ceil
        ):
            return float(phi_hint)
        # Stale (out-of-band) or absent hints fall back to the cold
        # seed — same policy as the flat backend: the band's upper edge
        # diverges with the stability margin, so edge starts are traps.
        return 0.0

    def solve(self, phi_hint=None) -> LoadDistributionResult:
        """Run the outer dual ascent and assemble the full-group result.

        ``phi_hint`` is ``None`` (cold start: median marginal of a
        capacity-proportional split), a float (shared-multiplier warm
        start, clamped into the feasible band), or a mapping
        ``{shard_index: phi}`` of per-shard hints (each shard is rooted
        at its own multiplier in one batched sweep, then the load-
        weighted mean seeds the outer loop).
        """
        tol = self.tol
        total_rate = self.total_rate
        budget_tol = tol * max(1.0, total_rate)
        phi_seed = float(np.nextafter(self.phi_floor, math.inf))

        phi = self._seed(phi_hint)
        if phi <= 0.0:
            usable = self.caps > 0.0
            g_start, _ = marginal_cost_and_slope_vec(
                self.ms, self.xbars, self.specials, self._prev,
                total_rate, self.disc,
            )
            phi = float(np.median(g_start[usable]))
        phi = min(max(float(phi), phi_seed), self.phi_ceil)

        phi_lo, phi_hi = self.phi_floor, self.phi_ceil
        r_lo = self.zeros.copy()
        r_hi = self.hard_caps.copy()
        f_lo = 0.0 - total_rate
        f_hi = float(self.hard_caps.sum()) - total_rate
        rates = self._prev
        iterations = 0
        converged = False
        for _ in range(_MAX_OUTER):
            iterations += 1
            loads, rates, fprime = self.response(phi, r_lo, r_hi)
            resid = float(loads.sum()) - total_rate
            if abs(resid) <= budget_tol:
                converged = True
                break
            if resid < 0.0:
                phi_lo, r_lo, f_lo = phi, rates, resid
            else:
                phi_hi, r_hi, f_hi = phi, rates, resid
            if phi_hi - phi_lo <= 1e-15 * max(phi_hi, 1.0):
                # Flat-marginal band: interpolate the bracketing rate
                # vectors component-wise (same repair as the flat
                # backends).
                t = f_lo / (f_lo - f_hi)
                rates = r_lo + t * (r_hi - r_lo)
                phi = phi_lo + t * (phi_hi - phi_lo)
                converged = True
                break
            if fprime > 0.0 and math.isfinite(fprime):
                cand = phi - resid / fprime
            else:
                cand = math.inf
            if not (math.isfinite(cand) and phi_lo < cand < phi_hi):
                # Same safeguard as the flat backend: geometric
                # bisection while the bracket spans decades.
                if phi_lo > 0.0 and phi_hi > 100.0 * phi_lo:
                    cand = math.sqrt(phi_lo * phi_hi)
                else:
                    cand = 0.5 * (phi_lo + phi_hi)
            phi = float(cand)
        if not converged:
            raise ConvergenceError(
                f"solve_sharded: no convergence in {_MAX_OUTER} outer "
                f"iterations (residual {resid:.3e})"
            )
        # Scatter candidates back to group order; pruned servers keep a
        # zero cap so the residual projection cannot route load to them.
        group = self.group
        full_rates = np.zeros(group.n)
        full_rates[self.cand] = rates
        full_caps = np.zeros(group.n)
        full_caps[self.cand] = self.hard_caps
        full_rates = settle_residual(full_rates, total_rate, full_caps)
        loads = self._shard_loads(full_rates[self.cand])
        cfg = self.plan.config
        phi = float(phi)
        return LoadDistributionResult(
            generic_rates=full_rates,
            mean_response_time=group.mean_response_time(full_rates, self.disc),
            phi=phi,
            discipline=self.disc,
            method="sharded-hierarchical",
            utilizations=group.utilizations(full_rates),
            per_server_response_times=group.per_server_response_times(
                full_rates, self.disc
            ),
            iterations=iterations,
            converged=True,
            metadata={
                "shards": self.plan.n_shards,
                "strategy": cfg.strategy,
                "top_k": cfg.top_k,
                "candidates": int(self.cand.size),
                "pruned": int(group.n - self.cand.size),
                # The converged multiplier is shared, so every shard's
                # next-tick warm start is the same phi — published as a
                # per-shard mapping because drifting shard loads will
                # move them apart between solves.
                "shard_phi": {s: phi for s in range(self.plan.n_shards)},
                "shard_loads": [float(x) for x in loads],
                "live_shards": [bool(x) for x in self.live],
                "inner_sweeps": int(self.inner_sweeps),
            },
        )


def resolve_plan(
    group: BladeServerGroup,
    *,
    config: ShardConfig | None = None,
    plan: ShardPlan | None = None,
    shards: int | None = None,
    strategy: str | None = None,
    assignment=None,
    top_k: int | None = None,
) -> ShardPlan:
    """Normalize :func:`solve_sharded`'s partitioning arguments.

    Exactly one source wins: a prebuilt ``plan`` (validated against
    ``group``), a :class:`ShardConfig`, or the shorthand kwargs (which
    fill a default config; passing ``assignment`` alone implies
    ``strategy="custom"``).  The facade's sweep path calls this once to
    amortize partitioning across a whole rate grid.
    """
    if plan is not None:
        if config is not None or any(
            v is not None for v in (shards, strategy, assignment, top_k)
        ):
            raise ParameterError(
                "pass either a prebuilt plan or partitioning kwargs, not both"
            )
        if plan.group is not group:
            raise ParameterError("plan was built for a different group")
        return plan
    if config is None:
        defaults = ShardConfig()
        config = ShardConfig(
            shards=defaults.shards if shards is None else shards,
            strategy=(
                ("custom" if assignment is not None else defaults.strategy)
                if strategy is None
                else strategy
            ),
            assignment=assignment,
            top_k=top_k,
        )
    elif any(v is not None for v in (shards, strategy, assignment, top_k)):
        raise ParameterError("pass either config or partitioning kwargs, not both")
    return partition_group(group, config)


def solve_sharded(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
    tol: float = DEFAULT_TOL,
    phi_hint: float | Mapping[int, float] | None = None,
    *,
    config: ShardConfig | None = None,
    plan: ShardPlan | None = None,
    shards: int | None = None,
    strategy: str | None = None,
    assignment=None,
    top_k: int | None = None,
    live: np.ndarray | None = None,
) -> LoadDistributionResult:
    """Hierarchical sharded solve (``method="sharded"``).

    Partitions ``group`` per ``config`` (or the ``shards`` /
    ``strategy`` / ``assignment`` / ``top_k`` shorthand kwargs; or a
    prebuilt ``plan``, which wins), solves each shard's inner KKT
    splits at the shared trial multiplier in one batched sweep, and
    equalizes marginal cost across shards with the outer dual ascent.
    With ``top_k=None`` the answer matches the flat solve to solver
    tolerance; with pruning the gap is measured by
    :func:`repro.shard.sparse.pruning_gap_report`.

    ``phi_hint`` accepts a float (shared multiplier) or a mapping of
    per-shard hints ``{shard_index: phi}`` — see
    :meth:`ShardCoordinator.solve`.

    ``live`` is an optional per-shard boolean mask: dead shards
    contribute no candidates and receive zero load — the failover
    re-solve the shard supervisor runs when a dispatcher drops out.
    The masked program must still be feasible (the live shards' capped
    capacity must exceed ``total_rate``), else
    :class:`~repro.core.exceptions.InfeasibleError` is raised.
    """
    plan = resolve_plan(
        group,
        config=config,
        plan=plan,
        shards=shards,
        strategy=strategy,
        assignment=assignment,
        top_k=top_k,
    )
    coordinator = ShardCoordinator(plan, total_rate, discipline, tol, live=live)
    o = get_obs()
    if not o.enabled:
        return coordinator.solve(phi_hint)
    with o.tracer.span(
        "shard.coordinate",
        n=group.n,
        shards=plan.n_shards,
        strategy=plan.config.strategy,
        top_k=plan.config.top_k if plan.config.top_k is not None else 0,
        candidates=int(coordinator.cand.size),
    ) as span:
        result = coordinator.solve(phi_hint)
        span.note(
            iterations=result.iterations,
            inner_sweeps=result.metadata["inner_sweeps"],
            t_prime=result.mean_response_time,
        )
    fam = o.registry.histogram(
        "repro_shard_load_share",
        "Converged per-shard share of the total generic load",
        lo=1e-4,
        hi=1.0,
    )
    total = max(float(sum(result.metadata["shard_loads"])), 1e-300)
    for load in result.metadata["shard_loads"]:
        fam.observe(max(load / total, 1e-300))
    return result


# Registered at import time (repro/__init__ imports this package);
# replace=True keeps importlib.reload() in tests idempotent.
register_method("sharded", solve_sharded, warm_startable=True, replace=True)
