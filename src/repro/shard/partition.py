"""Fleet partitioning: carve a blade-server group into shards.

At production fleet sizes no single dispatcher sees every server; the
sharded control plane (:mod:`repro.shard.coordinator`) gives each
dispatcher one *shard* — a contiguous slice of the fleet it owns
end-to-end — and equalizes marginal cost across shards one level up.
This module owns the static side of that story: :class:`ShardConfig`
(the public partitioning knob), the :class:`Shard`/:class:`ShardPlan`
value objects, and :func:`partition_group`, which realizes one of three
strategies:

``"contiguous"``
    Equal-count slices of the group in its given order — the neutral
    default, matching how racks/rows are typically enumerated.
``"type"``
    Servers are ordered by hardware type (speed, then size, then
    special preload) before slicing, so each shard holds near-
    homogeneous runs.  Heterogeneity-aware dispatch (Gardner et al.
    2020, PAPERS.md) wants exactly this: a dispatcher whose candidates
    are alike needs far fewer of them to realize the optimal split.
``"custom"``
    An explicit per-server shard assignment, for topologies the two
    built-ins cannot express (failure domains, network distance).

A :class:`ShardPlan` is pure topology — which global index belongs to
which dispatcher — and is shared by the one-shot sharded solver and the
multi-dispatcher closed loop alike.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import ParameterError
from ..core.server import BladeServerGroup
from ..obs import ConfigBase

__all__ = ["ShardConfig", "Shard", "ShardPlan", "partition_group"]

_STRATEGIES = ("contiguous", "type", "custom")


@dataclass(frozen=True, kw_only=True)
class ShardConfig(ConfigBase):
    """How to partition a fleet into dispatcher-owned shards.

    Keyword-only and frozen; round-trips through ``to_dict()`` /
    ``from_dict()`` like every config in the library.

    Attributes
    ----------
    shards:
        Number of shards (>= 1; clamped to the group size at partition
        time — a 3-server group asked for 8 shards gets 3 singletons).
    strategy:
        ``"contiguous"``, ``"type"``, or ``"custom"`` (see module
        docstring).
    assignment:
        Per-server shard ids, required (and only allowed) with
        ``strategy="custom"``.  Length must equal the group size and
        every id in ``[0, shards)`` must be used.
    top_k:
        Sparse candidate pruning: each shard's dispatcher keeps only
        its ``top_k`` servers by marginal-cost rank (see
        :mod:`repro.shard.sparse`).  ``None`` disables pruning — every
        dispatcher considers its whole shard and the sharded solve is
        exact to solver tolerance.
    """

    shards: int = 4
    strategy: str = "contiguous"
    assignment: tuple[int, ...] | None = None
    top_k: int | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ParameterError(f"shards must be >= 1, got {self.shards}")
        if self.strategy not in _STRATEGIES:
            raise ParameterError(
                f"unknown strategy {self.strategy!r}; use one of {_STRATEGIES}"
            )
        if (self.assignment is not None) != (self.strategy == "custom"):
            raise ParameterError(
                'assignment must be given exactly when strategy="custom"'
            )
        if self.assignment is not None:
            object.__setattr__(
                self, "assignment", tuple(int(s) for s in self.assignment)
            )
        if self.top_k is not None and self.top_k < 1:
            raise ParameterError(f"top_k must be >= 1 or None, got {self.top_k}")


@dataclass(frozen=True)
class Shard:
    """One dispatcher's slice of the fleet.

    Attributes
    ----------
    index:
        Shard id, ``0 .. n_shards - 1``.
    members:
        Global server indices owned by this shard, in group order.
    group:
        The shard's servers materialized as their own
        :class:`BladeServerGroup` (shares the parent's ``rbar``) — what
        the shard's dispatcher solves and routes over.
    """

    index: int
    members: tuple[int, ...]
    group: BladeServerGroup

    @property
    def n(self) -> int:
        """Number of servers in the shard."""
        return len(self.members)

    @property
    def capacity(self) -> float:
        """The shard's saturation point ``sum of spare capacities``."""
        return self.group.max_generic_rate


@dataclass(frozen=True)
class ShardPlan:
    """A full partition of one group into shards (pure topology).

    Attributes
    ----------
    group:
        The partitioned fleet.
    config:
        The :class:`ShardConfig` the plan was built from.
    shards:
        The shards, ordered by :attr:`Shard.index`; together their
        members cover every global index exactly once.
    """

    group: BladeServerGroup
    config: ShardConfig
    shards: tuple[Shard, ...]

    @property
    def n_shards(self) -> int:
        """Number of shards in the plan."""
        return len(self.shards)

    @property
    def assignment(self) -> np.ndarray:
        """Vector mapping each global server index to its shard id."""
        owner = np.empty(self.group.n, dtype=np.int64)
        for shard in self.shards:
            owner[list(shard.members)] = shard.index
        return owner

    def live_capacity(self, live: np.ndarray | None = None) -> float:
        """Saturation point of the shards flagged live (all by default).

        ``live`` is a boolean vector of length :attr:`n_shards`; dead
        shards contribute zero capacity.  The shard supervisor clamps
        the failover re-solve's target rate with this, so a degraded
        fleet sheds instead of saturating its survivors.
        """
        if live is None:
            return self.group.max_generic_rate
        live = np.asarray(live, dtype=bool)
        if live.shape != (self.n_shards,):
            raise ParameterError(
                f"live mask has shape {live.shape}, expected ({self.n_shards},)"
            )
        return float(sum(s.capacity for s in self.shards if live[s.index]))

    def expand(self, per_shard: list[np.ndarray]) -> np.ndarray:
        """Scatter per-shard (local-order) vectors back to group order."""
        if len(per_shard) != self.n_shards:
            raise ParameterError(
                f"expected {self.n_shards} shard vectors, got {len(per_shard)}"
            )
        full = np.zeros(self.group.n)
        for shard, values in zip(self.shards, per_shard):
            values = np.asarray(values, dtype=float)
            if values.shape != (shard.n,):
                raise ParameterError(
                    f"shard {shard.index} vector has shape {values.shape}, "
                    f"expected ({shard.n},)"
                )
            full[list(shard.members)] = values
        return full


def _slice_order(order: np.ndarray, shards: int) -> list[np.ndarray]:
    """Split ``order`` into ``shards`` near-equal contiguous runs."""
    return [chunk for chunk in np.array_split(order, shards) if chunk.size]


def partition_group(
    group: BladeServerGroup, config: ShardConfig = ShardConfig()
) -> ShardPlan:
    """Partition ``group`` into a :class:`ShardPlan` per ``config``.

    The shard count is clamped to the group size; every strategy
    produces shards whose member lists are sorted in global order, so
    local index ``j`` of shard ``s`` always means global index
    ``plan.shards[s].members[j]``.
    """
    n = group.n
    n_shards = min(config.shards, n)
    if config.strategy == "contiguous":
        buckets = _slice_order(np.arange(n), n_shards)
    elif config.strategy == "type":
        # Stable sort by hardware type: fastest blades first, then
        # bigger chassis, then heavier special preload.  Slicing the
        # sorted order keeps each shard's candidates near-homogeneous.
        order = np.lexsort(
            (group.special_rates, -group.sizes, -group.speeds)
        )
        buckets = _slice_order(order, n_shards)
    else:  # custom
        assignment = np.asarray(config.assignment, dtype=np.int64)
        if assignment.shape != (n,):
            raise ParameterError(
                f"assignment covers {assignment.size} servers, group has {n}"
            )
        if assignment.min() < 0 or assignment.max() >= n_shards:
            raise ParameterError(
                f"assignment ids must lie in [0, {n_shards}), got "
                f"[{assignment.min()}, {assignment.max()}]"
            )
        buckets = [np.flatnonzero(assignment == s) for s in range(n_shards)]
        empty = [s for s, b in enumerate(buckets) if b.size == 0]
        if empty:
            raise ParameterError(f"custom assignment leaves shards {empty} empty")
    shards = []
    for index, bucket in enumerate(buckets):
        members = tuple(int(i) for i in np.sort(bucket))
        shards.append(
            Shard(
                index=index,
                members=members,
                group=BladeServerGroup(
                    (group.servers[i] for i in members), rbar=group.rbar
                ),
            )
        )
    return ShardPlan(group=group, config=config, shards=tuple(shards))
