"""Fleet supervisor: keep the sharded closed loop alive through failures.

PR 3's :class:`~repro.faults.supervisor.ResilienceSupervisor` hardens
*one* dispatcher's solve path.  At fleet scale two new failure surfaces
open above the shards:

* **the coordinator tick** — the periodic global re-solve is a single
  point of failure: one injected (or organic) solver fault would
  propagate out of the control event and kill the whole run;
* **the shards themselves** — a crashed or hung shard dispatcher keeps
  its arrival share forever, silently shedding everything the Bernoulli
  split sends it.

:class:`ShardSupervisor` closes both:

``tick(now)``
    Wraps :meth:`~repro.shard.runtime.ShardedDispatcher.rebalance` with
    bounded retries, simulated-time backoff, and a circuit breaker
    whose fallback is the *last known good shares* masked to the live
    shards — a failed global solve degrades the fleet to its previous
    split instead of killing the loop.  While the breaker is open,
    ticks skip the solver entirely; after ``breaker_cooldown`` one
    half-open probe decides between closing it and re-opening.

``heartbeat(now)``
    A completion-based failure detector: each sweep snapshots every
    shard's forwarded-completion counter.  A shard whose whole interval
    produced no completions while it held more than ``min_share`` of
    the arrival stream is suspected; ``heartbeat_misses`` consecutive
    silent intervals declare it dead.  Declaration *synchronously*
    zeroes the dead shard's share (renormalizing over the survivors —
    the failover bound holds even if the follow-up solve fails) and
    then runs a guarded masked re-solve over the live shards only.

``kill_shard`` / ``stall_shard`` / ``restore_shard``
    The fault seams the closed-loop harness drives: hard-kill (abandon
    durable state mid-write, optionally corrupting the journal tail),
    hang, and splice-back.  A restore after a detected failover folds
    the shard back into the global split with one more guarded
    re-solve; an atomic kill+restore (the PR 5 crash-equivalence shape)
    leaves the shares untouched so the run stays bit-comparable to an
    unfaulted baseline.

Fleet-level evidence lands in :class:`~repro.runtime.metrics.FleetMetrics`
(counters, incident log, rebalance latency) and — when observability is
on — the ``repro_shard_failovers_total`` / ``repro_shard_restores_total``
counters, the ``repro_shard_degraded`` gauge, and the
``repro_shard_rebalance_seconds`` histogram.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from ..core.exceptions import ParameterError, ReproError
from ..obs import ConfigBase, get_obs
from ..runtime.metrics import FleetMetrics, IncidentRecord
from .runtime import ShardedDispatcher

__all__ = ["ShardSupervisorConfig", "ShardSupervisor"]


@dataclass(frozen=True, kw_only=True)
class ShardSupervisorConfig(ConfigBase):
    """Tuning knobs of the fleet supervisor.

    Keyword-only and frozen; round-trips through ``to_dict()`` /
    ``from_dict()`` like every config in the library.

    Attributes
    ----------
    heartbeat_interval:
        Simulated time between failure-detector sweeps (and the unit of
        the failover bound: a dead shard loses its share at most one
        interval after its last healthy sweep, times
        ``heartbeat_misses``).  Non-positive disables heartbeats.
    heartbeat_misses:
        Consecutive silent intervals before a shard is declared dead.
    min_share:
        Shards at or below this arrival share are exempt from the
        detector — a starved-by-design shard legitimately completes
        nothing, and zeroing it would churn the split for no benefit.
    retries:
        Extra same-tick solve attempts after a primary failure.
    backoff:
        Simulated time after a failed tick during which new ticks skip
        the solver and serve the degraded split.
    breaker_threshold:
        Consecutive failed ticks that open the circuit breaker.
    breaker_cooldown:
        Simulated time the breaker stays open before one half-open
        probe tick is allowed through.
    """

    heartbeat_interval: float = 25.0
    heartbeat_misses: int = 1
    min_share: float = 1e-3
    retries: int = 1
    backoff: float = 30.0
    breaker_threshold: int = 3
    breaker_cooldown: float = 200.0

    def __post_init__(self) -> None:
        if self.heartbeat_misses < 1:
            raise ParameterError(
                f"heartbeat_misses must be >= 1, got {self.heartbeat_misses}"
            )
        if not (0.0 <= self.min_share < 1.0):
            raise ParameterError(
                f"min_share must be in [0, 1), got {self.min_share!r}"
            )
        if self.retries < 0:
            raise ParameterError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0.0 or self.breaker_cooldown < 0.0:
            raise ParameterError("backoff and breaker_cooldown must be >= 0")
        if self.breaker_threshold < 1:
            raise ParameterError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )


class ShardSupervisor:
    """Supervises one :class:`~repro.shard.runtime.ShardedDispatcher`.

    Attributes
    ----------
    metrics:
        Fleet-level :class:`~repro.runtime.metrics.FleetMetrics`.
    failovers:
        ``(time, shard_index)`` of every dead declaration, in order.
    restore_log:
        ``(time, shard_index)`` of every splice-back, in order.
    restore_reports:
        :class:`~repro.recovery.resume.RestoreReport` objects handed to
        :meth:`restore_shard`, in splice order.
    """

    def __init__(
        self,
        dispatcher: ShardedDispatcher,
        config: ShardSupervisorConfig = ShardSupervisorConfig(),
    ) -> None:
        self.dispatcher = dispatcher
        self.config = config
        self.metrics = FleetMetrics.create()
        n = dispatcher.plan.n_shards
        #: The supervisor's belief about shard liveness — lags the
        #: dispatcher's ground truth by detection latency, on purpose:
        #: failover is *observed*, never assumed.
        self._live = np.ones(n, dtype=bool)
        self._last_completions = np.zeros(n, dtype=np.int64)
        self._suspicion = np.zeros(n, dtype=np.int64)
        self._consecutive_failures = 0
        self._blocked_until = -np.inf
        self._open_until: float | None = None
        self._last_good_shares = dispatcher.shares
        self.failovers: list[tuple[float, int]] = []
        self.restore_log: list[tuple[float, int]] = []
        self.restore_reports: list = []
        self._obs = get_obs()

    # -- views -----------------------------------------------------------------------

    @property
    def live(self) -> np.ndarray:
        """The supervisor's current liveness belief (copy)."""
        return self._live.copy()

    @property
    def breaker_open(self) -> bool:
        """Whether the coordinator circuit breaker is currently open."""
        return self._open_until is not None

    # -- supervised coordinator tick -------------------------------------------------

    def tick(self, now: float) -> bool:
        """One supervised rebalance; returns whether a solve succeeded.

        Decision ladder: breaker open (and cooling) -> skip; inside
        backoff -> skip; otherwise attempt the masked global re-solve
        with up to ``retries`` same-tick retries (a half-open probe
        gets exactly one attempt).  Failure paths always leave the
        fleet on the last known good shares masked to the live shards.
        """
        counters = self.metrics.counters
        counters.rebalance_attempts += 1
        half_open = False
        if self._open_until is not None:
            if now < self._open_until:
                counters.rebalance_skipped += 1
                self._degrade(now)
                return False
            half_open = True
        elif now < self._blocked_until:
            counters.rebalance_skipped += 1
            self._degrade(now)
            return False
        attempts = 1 if half_open else 1 + self.config.retries
        for attempt in range(attempts):
            t0 = time.perf_counter()
            try:
                self.dispatcher.rebalance(now, live=self._live)
            except ReproError as exc:
                self._observe_latency(time.perf_counter() - t0)
                counters.rebalance_failures += 1
                if attempt + 1 < attempts:
                    counters.rebalance_retries += 1
                    continue
                self._on_tick_failure(now, exc, half_open)
                return False
            self._observe_latency(time.perf_counter() - t0)
            counters.rebalance_successes += 1
            self._consecutive_failures = 0
            self._blocked_until = -np.inf
            if half_open:
                self._close_breaker(now)
            self._last_good_shares = self.dispatcher.shares
            return True
        return False  # pragma: no cover - loop always returns

    def _observe_latency(self, seconds: float) -> None:
        self.metrics.rebalance_latency.add(seconds)
        if self._obs.enabled:
            self._obs.registry.histogram(
                "repro_shard_rebalance_seconds",
                "Wall-clock seconds per attempted coordinator re-solve",
                lo=1e-6,
                hi=10.0,
            ).observe(max(seconds, 1e-9))

    def _on_tick_failure(self, now: float, exc: Exception, half_open: bool) -> None:
        self._consecutive_failures += 1
        self._blocked_until = now + self.config.backoff
        self.metrics.incidents.emit(
            IncidentRecord(
                time=now,
                kind="rebalance-failure",
                severity="warning",
                detail=f"coordinator re-solve failed: {exc}",
                data={
                    "error": str(exc),
                    "consecutive": self._consecutive_failures,
                },
            )
        )
        if half_open or self._consecutive_failures >= self.config.breaker_threshold:
            self._open_breaker(now, probe_failed=half_open)
        self._degrade(now)

    def _degrade(self, now: float) -> None:
        """Serve the last known good shares, masked to the live shards."""
        shares = np.where(self._live, self._last_good_shares, 0.0)
        self.dispatcher.set_shares(shares)

    def _open_breaker(self, now: float, probe_failed: bool = False) -> None:
        reopened = self._open_until is not None
        self._open_until = now + self.config.breaker_cooldown
        if not reopened:
            self.metrics.counters.breaker_opens += 1
        self.metrics.incidents.emit(
            IncidentRecord(
                time=now,
                kind="coordinator-breaker-open",
                severity="critical",
                detail=(
                    "half-open probe failed; breaker re-opened"
                    if probe_failed
                    else "coordinator circuit breaker opened"
                ),
                data={"until": float(self._open_until)},
            )
        )

    def _close_breaker(self, now: float) -> None:
        self._open_until = None
        self.metrics.counters.breaker_closes += 1
        self.metrics.incidents.emit(
            IncidentRecord(
                time=now,
                kind="coordinator-breaker-close",
                severity="info",
                detail="half-open probe succeeded; breaker closed",
            )
        )

    # -- heartbeat failure detector --------------------------------------------------

    def heartbeat(self, now: float) -> None:
        """One failure-detector sweep over the shard fleet.

        Purely observational: the detector reads only the forwarded-
        completion counters, never the dispatcher's internal liveness —
        a hung process and a killed one look identical from outside,
        which is the point.
        """
        self.metrics.counters.heartbeat_checks += 1
        snapshot = self.dispatcher.completions_by_shard.copy()
        delta = snapshot - self._last_completions
        self._last_completions = snapshot
        shares = self.dispatcher.shares
        for shard in range(self.dispatcher.plan.n_shards):
            if not self._live[shard]:
                continue
            if delta[shard] == 0 and shares[shard] > self.config.min_share:
                self._suspicion[shard] += 1
            else:
                self._suspicion[shard] = 0
            if self._suspicion[shard] >= self.config.heartbeat_misses:
                self._declare_dead(shard, now)

    def _declare_dead(self, shard: int, now: float) -> None:
        """Fail one shard over: zero its share, re-solve over survivors."""
        self._live[shard] = False
        self._suspicion[shard] = 0
        self.metrics.counters.failovers += 1
        self.failovers.append((now, shard))
        self.metrics.degraded = int((~self._live).sum())
        self.metrics.incidents.emit(
            IncidentRecord(
                time=now,
                kind="shard-dead",
                severity="critical",
                detail=f"shard {shard} declared dead (missed heartbeats)",
                data={"shard": shard, "degraded": self.metrics.degraded},
            )
        )
        if self._obs.enabled:
            self._obs.registry.counter(
                "repro_shard_failovers_total",
                "Shards declared dead and failed over by the supervisor",
            ).inc()
            self._obs.registry.gauge(
                "repro_shard_degraded",
                "Shards currently failed over (0 = healthy fleet)",
            ).set(float(self.metrics.degraded))
        # Share zeroing first, synchronously: the failover bound must
        # hold even when the follow-up solve fails or the breaker is
        # open — the survivors just keep their previous proportions.
        self._degrade(now)
        self._last_good_shares = self.dispatcher.shares
        if not self._live.any():
            self.metrics.incidents.emit(
                IncidentRecord(
                    time=now,
                    kind="fleet-dark",
                    severity="critical",
                    detail="every shard is dead; shedding all arrivals",
                )
            )
            return
        self.tick(now)

    # -- fault seams (driven by the closed-loop harness) -----------------------------

    def kill_shard(self, shard: int, now: float, corrupt: bool = False) -> None:
        """Hard-kill one shard; optionally tear its journal tail.

        The supervisor's own liveness belief deliberately stays ``True``
        — death is *detected* by the heartbeat sweep, never assumed from
        the injection itself.  ``corrupt`` appends a garbage line to the
        shard's write-ahead journal after the kill, so the restore path
        must exercise the CRC torn-tail truncation (the appended line —
        and only it — is dropped; every flushed record stays trusted).
        """
        runtime = self.dispatcher.runtimes[shard]
        self.dispatcher.kill_shard(shard)
        self.metrics.incidents.emit(
            IncidentRecord(
                time=now,
                kind="shard-journal-corrupt" if corrupt else "shard-crash",
                severity="critical",
                detail=f"shard {shard} hard-killed"
                + (" with a torn journal tail" if corrupt else ""),
                data={"shard": shard},
            )
        )
        if corrupt:
            from ..recovery.journal import JOURNAL_NAME

            directory = runtime.config.recovery.directory
            path = os.path.join(directory, JOURNAL_NAME)
            if os.path.exists(path):
                with open(path, "a", encoding="utf-8") as fh:
                    fh.write("torn!{this is not a journal record\n")

    def stall_shard(self, shard: int, now: float) -> None:
        """Hang one shard: alive, state intact, reading nothing."""
        self.dispatcher.stall_shard(shard)
        self.metrics.incidents.emit(
            IncidentRecord(
                time=now,
                kind="shard-stall",
                severity="warning",
                detail=f"shard {shard} stalled",
                data={"shard": shard},
            )
        )

    def restore_shard(
        self, shard: int, now: float, runtime=None, report=None
    ) -> None:
        """Splice a shard back into the fleet.

        ``runtime`` replaces the dead control plane (crash recovery);
        ``None`` revives the existing one (stall end).  If the shard had
        been failed over, it is folded back into the global split with
        a guarded re-solve; if death was never declared (atomic
        kill+restore, or a stall shorter than the detector's window)
        the shares are left untouched — that is what keeps the point-
        crash path bit-comparable to an unfaulted baseline.
        """
        self.dispatcher.revive_shard(shard, runtime, now=now)
        # Sync the detector's snapshot so the completions the shard
        # missed while dark are not read as fresh progress or silence.
        self._last_completions[shard] = self.dispatcher.completions_by_shard[shard]
        self._suspicion[shard] = 0
        self.metrics.counters.restores += 1
        self.restore_log.append((now, shard))
        if report is not None:
            self.restore_reports.append(report)
        self.metrics.incidents.emit(
            IncidentRecord(
                time=now,
                kind="shard-restored",
                severity="info",
                detail=f"shard {shard} spliced back in",
                data={
                    "shard": shard,
                    "was_failed_over": bool(not self._live[shard]),
                    "replayed": (
                        int(report.replayed_records) if report is not None else 0
                    ),
                },
            )
        )
        if self._obs.enabled:
            self._obs.registry.counter(
                "repro_shard_restores_total",
                "Shards spliced back into the fleet after restore/stall-end",
            ).inc()
        if not self._live[shard]:
            self._live[shard] = True
            self.metrics.degraded = int((~self._live).sum())
            if self._obs.enabled:
                self._obs.registry.gauge(
                    "repro_shard_degraded",
                    "Shards currently failed over (0 = healthy fleet)",
                ).set(float(self.metrics.degraded))
            self.tick(now)
