"""repro.shard — the sharded control plane for fleet-scale groups.

Partitions a blade-server fleet into dispatcher-owned shards
(:mod:`repro.shard.partition`), solves each shard's inner KKT splits
against a shared multiplier and equalizes marginal cost across shards
one level up (:mod:`repro.shard.coordinator` — the paper's
water-filling lifted a level, registered as ``method="sharded"``),
prunes each dispatcher's candidate set to its top-k servers with a
measured optimality gap (:mod:`repro.shard.sparse`), and runs the
multi-dispatcher closed loop where every shard owns its own journal
and checkpoint generation (:mod:`repro.shard.runtime`).

See ``docs/SHARDING.md`` for the architecture and the outer-loop
derivation.
"""

from __future__ import annotations

from .coordinator import ShardCoordinator, solve_sharded
from .partition import Shard, ShardConfig, ShardPlan, partition_group
from .runtime import (
    ShardedDispatcher,
    ShardedRuntimeReport,
    run_sharded_closed_loop,
    shard_seeds,
)
from .sparse import (
    PruningGapEntry,
    PruningGapReport,
    candidate_sets,
    pruning_gap_report,
    rank_servers,
)
from .supervisor import ShardSupervisor, ShardSupervisorConfig

__all__ = [
    "ShardConfig",
    "Shard",
    "ShardPlan",
    "partition_group",
    "ShardCoordinator",
    "solve_sharded",
    "candidate_sets",
    "rank_servers",
    "PruningGapEntry",
    "PruningGapReport",
    "pruning_gap_report",
    "ShardedDispatcher",
    "ShardedRuntimeReport",
    "run_sharded_closed_loop",
    "shard_seeds",
    "ShardSupervisor",
    "ShardSupervisorConfig",
]
