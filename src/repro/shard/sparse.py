"""Sparse candidate pruning: top-k server sets per shard, with a
measured optimality-gap report.

The heterogeneity-aware dispatch results of Gardner et al. 2020
(PAPERS.md) say a dispatcher rarely needs its whole candidate pool: at
the optimum most of the load lands on the servers whose *marginal cost
at zero load* is smallest, and the paper's water-filling parks the
expensive tail outright.  Zhao & Mukherjee 2023 (PAPERS.md) exploit the
same structure by pruning the rate matrix to its dominant entries.
This module applies both ideas to the sharded control plane:

* :func:`rank_servers` orders every shard's members by their zero-load
  marginal ``g_i(0)`` — the exact quantity the solver compares against
  the multiplier ``phi`` to decide parking, so the ranking agrees with
  the optimizer's own preference order;
* :func:`candidate_sets` keeps each shard's ``top_k`` cheapest servers
  (rank prefixes) unioned with a ``k``-independent global feasibility
  floor, so candidate sets are *nested* in ``k`` and the optimality gap
  is monotone non-increasing by construction;
* :func:`pruning_gap_report` measures the relative excess mean response
  time of the pruned sharded solve against the flat Newton solve over a
  ``k`` sweep — the number the ISSUE's acceptance criteria track in
  ``BENCH_solver_scaling.json``.

Pruning is *approximate only through the candidate sets*: within the
kept servers the hierarchical solve is still exact, so the gap is
purely the cost of the servers a dispatcher no longer sees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bisection import DEFAULT_TOL, STABILITY_MARGIN
from ..core.newton import marginal_cost_and_slope_vec
from ..core.response import Discipline
from .partition import ShardConfig, ShardPlan

__all__ = [
    "rank_servers",
    "candidate_sets",
    "PruningGapEntry",
    "PruningGapReport",
    "pruning_gap_report",
]

#: Capacity headroom of the feasibility floor: the kept fleet can carry
#: at least ``(1 + headroom) * total_rate``, bounding the utilization of
#: a floor-dominated pruned system away from 1.
_FLOOR_HEADROOM = 0.05


def _zero_load_marginals(
    plan: ShardPlan, total_rate: float, disc: Discipline
) -> np.ndarray:
    """``g_i(0)`` for every server of the plan's group (one batched call)."""
    group = plan.group
    ms = group.sizes.astype(np.int64)
    xbars = group.xbars.astype(float)
    specials = group.special_rates.astype(float)
    g0, _ = marginal_cost_and_slope_vec(
        ms, xbars, specials, np.zeros(group.n), total_rate, disc
    )
    return g0


def rank_servers(
    plan: ShardPlan,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
) -> list[np.ndarray]:
    """Per-shard *local* index orderings, cheapest zero-load marginal first.

    The ranking is the optimizer's own: the water-filling activates
    servers in increasing ``g_i(0)`` as the multiplier rises, so a rank
    prefix is exactly "the servers the optimum would touch first".
    Ties (identical hardware) break by local index, keeping the
    ordering deterministic.
    """
    disc = Discipline.coerce(discipline)
    g0 = _zero_load_marginals(plan, total_rate, disc)
    return [
        np.argsort(g0[np.asarray(shard.members)], kind="stable")
        for shard in plan.shards
    ]


def candidate_sets(
    plan: ShardPlan,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
    top_k: int | None = None,
) -> list[np.ndarray]:
    """Kept *local* indices per shard (sorted ascending) under ``top_k``.

    ``top_k=None`` keeps everything (the sharded solve is then exact to
    solver tolerance).  Otherwise each shard keeps the prefix of its
    :func:`rank_servers` ordering, unioned with the *feasibility floor*
    — the minimal prefix of the global cheapest-first order whose
    stability-capped capacity clears ``total_rate`` with 5% headroom,
    the same for every ``k``.  Prefixes grow with ``k`` and the floor never
    moves, so candidate sets are nested in ``k``, which is what makes
    the measured optimality gap monotone non-increasing.
    """
    disc = Discipline.coerce(discipline)
    if top_k is None:
        return [np.arange(shard.n) for shard in plan.shards]
    g0 = _zero_load_marginals(plan, total_rate, disc)
    orders = rank_servers(plan, total_rate, disc)
    caps = plan.group.spare_capacities
    hard = np.where(caps > 0.0, (1.0 - STABILITY_MARGIN) * caps, 0.0)
    members = [np.asarray(shard.members) for shard in plan.shards]
    # Feasibility floor: the minimal prefix of the *global* g0-ascending
    # order whose stability-capped capacity clears the offered load with
    # ``_FLOOR_HEADROOM`` to spare.  A k too small to carry lambda'
    # would otherwise leave the pruned system saturated even though the
    # full fleet is fine (and a floor with zero headroom pins its
    # marginal server at utilization ~1, exploding the pruned T').  The
    # floor depends only on (group, lambda'), never on k, so
    # kept(k) = per-shard prefix(k) | floor stays nested in k — a
    # sequential "admit until feasible" expansion would not be (small-k
    # sets pick up cheap extras the larger prefixes drop), breaking the
    # gap curve's monotonicity.
    global_order = np.argsort(g0, kind="stable")
    running = np.cumsum(hard[global_order])
    target = (1.0 + _FLOOR_HEADROOM) * total_rate
    need = int(np.searchsorted(running, target, side="right")) + 1
    floor = global_order[: min(need, global_order.size)]
    assignment = plan.assignment
    kept = []
    for s in range(plan.n_shards):
        local_of = np.empty(plan.group.n, dtype=np.int64)
        local_of[members[s]] = np.arange(members[s].size)
        extras = local_of[floor[assignment[floor] == s]]
        prefix = orders[s][: min(top_k, len(orders[s]))]
        kept.append(np.union1d(prefix, extras))
    return kept


@dataclass(frozen=True)
class PruningGapEntry:
    """One point of the measured gap curve.

    Attributes
    ----------
    top_k:
        The per-shard candidate budget this point was solved with.
    candidates:
        Total servers actually kept across shards (>= ``shards * k``
        only when the feasibility expansion had to admit extras).
    t_prime:
        Mean response time of the pruned sharded solve.
    gap:
        Relative excess over the flat optimum,
        ``(t_prime - flat_t_prime) / flat_t_prime`` (>= 0 up to solver
        tolerance; monotone non-increasing in ``top_k``).
    """

    top_k: int
    candidates: int
    t_prime: float
    gap: float

    def to_dict(self) -> dict:
        return {
            "top_k": self.top_k,
            "candidates": self.candidates,
            "t_prime": self.t_prime,
            "gap": self.gap,
        }


@dataclass(frozen=True)
class PruningGapReport:
    """Measured optimality-gap curve of top-k pruning vs the flat solve.

    ``entries`` is ordered by increasing ``top_k``; ``exact_gap`` is
    the pruning-off (full candidate sets) sharded solve's gap, the
    number the acceptance criteria bound below 0.1%.
    """

    n: int
    shards: int
    strategy: str
    total_rate: float
    flat_t_prime: float
    exact_gap: float
    entries: tuple[PruningGapEntry, ...]

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "shards": self.shards,
            "strategy": self.strategy,
            "total_rate": self.total_rate,
            "flat_t_prime": self.flat_t_prime,
            "exact_gap": self.exact_gap,
            "entries": [entry.to_dict() for entry in self.entries],
        }


def pruning_gap_report(
    group,
    total_rate: float,
    ks: tuple[int, ...],
    *,
    shards: int = 4,
    strategy: str = "contiguous",
    discipline: Discipline | str = Discipline.FCFS,
    tol: float = DEFAULT_TOL,
) -> PruningGapReport:
    """Measure the pruning optimality gap over a ``top_k`` sweep.

    Solves the group once flat (Newton backend), once sharded with
    pruning off, and once per ``k``; every gap is reported relative to
    the flat optimum.  Used by ``benchmarks/trajectory.py`` to extend
    the committed ``BENCH_solver_scaling.json`` and asserted monotone
    by the test suite.
    """
    from ..core.newton import solve_newton
    from .coordinator import solve_sharded

    disc = Discipline.coerce(discipline)
    flat = solve_newton(group, total_rate, disc, tol=tol)
    flat_t = float(flat.mean_response_time)

    def _gap(t_prime: float) -> float:
        return (float(t_prime) - flat_t) / flat_t

    exact = solve_sharded(
        group,
        total_rate,
        disc,
        tol=tol,
        config=ShardConfig(shards=shards, strategy=strategy),
    )
    entries = []
    for k in sorted(set(int(k) for k in ks)):
        cfg = ShardConfig(shards=shards, strategy=strategy, top_k=k)
        pruned = solve_sharded(group, total_rate, disc, tol=tol, config=cfg)
        entries.append(
            PruningGapEntry(
                top_k=k,
                candidates=int(pruned.metadata["candidates"]),
                t_prime=float(pruned.mean_response_time),
                gap=_gap(pruned.mean_response_time),
            )
        )
    return PruningGapReport(
        n=group.n,
        shards=min(shards, group.n),
        strategy=strategy,
        total_rate=float(total_rate),
        flat_t_prime=flat_t,
        exact_gap=_gap(exact.mean_response_time),
        entries=tuple(entries),
    )
