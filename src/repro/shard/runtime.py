"""Multi-dispatcher closed loop: one runtime per shard, coordinated.

The flat closed loop (:mod:`repro.runtime.loop`) is one dispatcher that
sees every server.  At fleet scale the control plane is sharded: each
shard runs its *own* :class:`~repro.runtime.loop.LoadDistributionRuntime`
— estimator, drift-triggered controller, router, and (when enabled) its
own write-ahead journal and checkpoint generation under
``<recovery.directory>/shard-XX/`` — over just its members, while the
coordinator periodically re-solves the *global* split
(:func:`repro.shard.coordinator.solve_sharded`) from the shards'
aggregated rate estimates and pushes the result down as

* **shard shares** — the fraction of the arrival stream each shard
  dispatcher owns (Bernoulli splitting keeps every shard's substream
  Poisson, so each inner runtime still operates in the paper's model);
* **per-shard warm starts** — the converged global multiplier primes
  every shard controller's ``phi_hint``
  (:meth:`~repro.runtime.controller.ResolveController.prime_phi_hint`),
  so the next drift-triggered local re-solve starts in the quadratic
  basin.

Between coordinator ticks the shards are fully autonomous: local drift
re-solves, local failures, local shedding — no cross-shard traffic at
all, which is the operational point of the architecture.

Fault tolerance (see :doc:`docs/FLEET_RESILIENCE`): the dispatcher
carries a per-shard liveness mask.  A shard marked dead — hard-killed
(``shard-crash``), hung (``shard-stall``), or failed over by the
:class:`~repro.shard.supervisor.ShardSupervisor` — sheds the arrivals
the Bernoulli split still draws for it, stops receiving completions
(counted, for the heartbeat detector), and queues health signals for
ordered delivery at splice-back.  Passing ``fault_plan`` and/or
``supervisor_config`` to :func:`run_sharded_closed_loop` routes every
coordinator tick through the supervisor and compiles shard-targeted
fault specs into engine control events.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from ..core.exceptions import ParameterError
from ..core.response import Discipline
from ..core.server import BladeServerGroup
from ..obs import get_obs
from ..runtime.estimator import RateEstimator
from ..runtime.loop import LoadDistributionRuntime, RuntimeConfig, _backoff_action
from ..sim.arrivals import TracedPoissonArrivals
from ..sim.engine import GroupSimulation, SimulationConfig, SimulationResult
from ..sim.task import SimTask
from ..workloads.traces import RateTrace
from .coordinator import solve_sharded
from .partition import ShardConfig, ShardPlan, partition_group

__all__ = [
    "shard_seeds",
    "ShardedDispatcher",
    "ShardedRuntimeReport",
    "run_sharded_closed_loop",
]


def shard_seeds(base_seed: int, n_shards: int) -> tuple[int, ...]:
    """Independent per-shard runtime seeds derived from ``base_seed``.

    Spawned through :class:`numpy.random.SeedSequence`, so the per-shard
    streams are statistically independent *across shards and across
    base seeds* — unlike the earlier affine ``base + 7919 * (s + 1)``
    rule, where base seeds 7919 apart produced shard runtimes sharing a
    seed (shard ``s`` of base ``b`` collided with shard ``s - 1`` of
    base ``b + 7919``).
    """
    if n_shards < 1:
        raise ParameterError(f"n_shards must be >= 1, got {n_shards}")
    children = np.random.SeedSequence(int(base_seed)).spawn(n_shards)
    return tuple(int(c.generate_state(1, dtype=np.uint64)[0]) for c in children)


def _shard_runtime_config(
    config: RuntimeConfig, shard_index: int, shard_seed: int
) -> RuntimeConfig:
    """Derive shard ``shard_index``'s runtime config from the base one.

    Each dispatcher gets an independent random seed (see
    :func:`shard_seeds`) and — when durability is on — its own recovery
    directory, so journals and checkpoint generations never interleave
    across shards.
    """
    recovery = config.recovery
    if recovery.enabled:
        recovery = replace(
            recovery,
            directory=os.path.join(
                recovery.directory, f"shard-{shard_index:02d}"
            ),
        )
    return replace(config, seed=int(shard_seed), recovery=recovery)


class _FleetRateView(RateEstimator):
    """The coordinator's offered-rate reading as a rate-estimator.

    ``estimate`` aggregates the *live* shard estimators; ``observe`` is
    a no-op (arrivals are observed by the owning shard runtime, not at
    fleet scope).  Exists so :meth:`FaultPlan.wrap_estimator` can
    decorate the coordinator's view with bias/noise windows the same
    way it decorates the flat runtime's estimator; dropout windows are
    inert at this scope.
    """

    def __init__(self, dispatcher: "ShardedDispatcher") -> None:
        self._dispatcher = dispatcher

    def observe(self, now: float) -> None:  # pragma: no cover - trivial
        pass

    def estimate(self, now: float) -> float:
        return self._dispatcher._raw_offered_rate(now)

    def reset(self, now: float = 0.0) -> None:  # pragma: no cover - trivial
        pass

    def state_dict(self) -> dict:
        return {"kind": "fleet-view"}

    def load_state(self, state: dict) -> None:  # pragma: no cover - trivial
        pass


def _default_coordinator_solve(group, total_rate, discipline, method="sharded", **kwargs):
    """Adapter giving :func:`solve_sharded` the 4-arg solver seam shape.

    :meth:`FaultPlan.wrap_solver` (and hence the chaos harness) expects
    ``solve_fn(group, rate, discipline, method=..., **kwargs)``; the
    coordinator always solves with the sharded method, so ``method`` is
    accepted for scoping (fault specs can target ``("sharded",)``) and
    then dropped.
    """
    return solve_sharded(group, total_rate, discipline, **kwargs)


class ShardedDispatcher:
    """Engine-facing composite of per-shard dispatchers.

    Implements the same protocol as a single
    :class:`~repro.runtime.loop.LoadDistributionRuntime` — the
    ``observe_arrival`` / ``route`` / ``observe_completion`` hook trio —
    by Bernoulli-splitting the arrival stream across shards (per the
    coordinator's shares) and delegating everything else to the owning
    shard's runtime.  ``observe_arrival`` runs *before* ``route`` on
    every generic arrival (the engine guarantees the ordering), so the
    shard drawn there is the one ``route`` delegates to.

    Parameters
    ----------
    plan, runtimes, shares, rng:
        Topology, one runtime per shard, initial arrival fractions, and
        the Bernoulli-split generator.
    solver_tol:
        Optional tolerance forwarded to the coordinator solve.
    solve_fn:
        Optional replacement for the coordinator solve seam, with the
        signature ``(group, rate, discipline, method=..., **kwargs)``
        (see :func:`_default_coordinator_solve`).  The fault harness
        installs :meth:`FaultPlan.wrap_solver` here so coordinator
        solver faults hit global rebalances without touching per-shard
        controllers.
    """

    def __init__(
        self,
        plan: ShardPlan,
        runtimes: Sequence[LoadDistributionRuntime],
        shares: np.ndarray,
        rng: np.random.Generator,
        solver_tol: float | None = None,
        solve_fn=None,
    ) -> None:
        if len(runtimes) != plan.n_shards:
            raise ParameterError(
                f"need one runtime per shard: {plan.n_shards} shards, "
                f"{len(runtimes)} runtimes"
            )
        self.plan = plan
        #: Mutable on purpose: a crash-restored runtime is spliced in
        #: via :meth:`revive_shard` while the engine keeps running.
        self.runtimes = list(runtimes)
        self._members = [np.asarray(s.members) for s in plan.shards]
        self._owner = plan.assignment
        self._local_of = np.zeros(plan.group.n, dtype=np.int64)
        for members in self._members:
            self._local_of[members] = np.arange(members.size)
        self._rng = rng
        self._tol = solver_tol
        self._solve = solve_fn if solve_fn is not None else _default_coordinator_solve
        self._pending = 0
        self._shard_phi: dict[int, float] | None = None
        self.rebalances = 0
        #: Per-shard liveness: ``False`` while a shard is killed,
        #: stalled, or awaiting splice-back.
        self._live = np.ones(plan.n_shards, dtype=bool)
        #: Completions forwarded per shard — the heartbeat signal the
        #: supervisor's failure detector snapshots.
        self.completions_by_shard = np.zeros(plan.n_shards, dtype=np.int64)
        #: Completions for non-live shards, dropped (process is gone).
        self.dropped_completions = 0
        #: Arrivals the split drew for a non-live shard, shed at route.
        self.failover_shed = 0
        #: Arrivals re-admitted to a live shard after drawing a dead one
        #: (admission-enabled fleets only; see :meth:`route_offer`).
        self.readmitted = 0
        # Health signals aimed at a non-live shard queue here, as
        # (kind, local_index, time) in arrival order, re-delivered at
        # splice-back — the restored runtime must not miss a server
        # state transition that happened while it was dark.
        self._pending_signals: list[list[tuple[str, int]]] = [
            [] for _ in range(plan.n_shards)
        ]
        self._rate_view: RateEstimator = _FleetRateView(self)
        self.set_shares(shares)

    # -- coordinator-facing ----------------------------------------------------------

    @property
    def shares(self) -> np.ndarray:
        """Current per-shard fractions of the arrival stream."""
        return self._shares.copy()

    @property
    def live_shards(self) -> np.ndarray:
        """Boolean per-shard liveness mask (copy)."""
        return self._live.copy()

    def shard_live(self, shard_index: int) -> bool:
        """Whether shard ``shard_index`` is currently live."""
        return bool(self._live[shard_index])

    def set_shares(self, shares: np.ndarray) -> None:
        """Adopt new per-shard arrival fractions (renormalized)."""
        shares = np.asarray(shares, dtype=float)
        if shares.shape != (self.plan.n_shards,) or (shares < 0.0).any():
            raise ParameterError("shares must be one non-negative value per shard")
        total = float(shares.sum())
        if total <= 0.0:
            shares = np.full(self.plan.n_shards, 1.0 / self.plan.n_shards)
            total = 1.0
            self._shares = shares
        else:
            self._shares = shares / total
        self._cum = np.cumsum(self._shares)
        self._cum[-1] = 1.0

    def _raw_offered_rate(self, now: float) -> float:
        """Live shards' aggregate offered estimate (un-faulted)."""
        total = sum(
            runtime.offered_estimate(now)
            for runtime, alive in zip(self.runtimes, self._live)
            if alive
        )
        return max(float(total), 1e-12)

    def offered_rate(self, now: float) -> float:
        """Aggregate offered generic rate across live shard estimators.

        Read through the fleet rate view so an installed estimator
        fault window (bias/noise) distorts what the coordinator sees.
        """
        return self._rate_view.estimate(now)

    def rebalance(self, now: float, live: np.ndarray | None = None) -> None:
        """One coordinator tick: global re-solve, push shares and hints.

        Runs the hierarchical solve on the full group at the shards'
        aggregated rate estimate (warm-started from the previous tick's
        per-shard multipliers), adopts the resulting shard load shares
        for arrival splitting, and primes every live shard controller's
        ``phi_hint`` with the converged global multiplier.

        ``live`` masks the solve to the surviving shards (the
        supervisor's failover view): dead shards contribute no
        candidates and get zero share, and the target rate is clamped
        to the live fleet's capped capacity so the degraded program
        stays feasible.
        """
        group = self.plan.group
        live_mask = None if live is None else np.asarray(live, dtype=bool)
        capacity = self.plan.live_capacity(live_mask)
        lam = min(
            self.offered_rate(now),
            self.runtimes[0].config.utilization_cap * capacity,
        )
        kwargs = {} if self._tol is None else {"tol": self._tol}
        if live_mask is not None:
            kwargs["live"] = live_mask
        result = self._solve(
            group,
            lam,
            self.runtimes[0].config.discipline,
            method="sharded",
            phi_hint=self._shard_phi,
            plan=self.plan,
            **kwargs,
        )
        self._shard_phi = dict(result.metadata["shard_phi"])
        loads = np.asarray(result.metadata["shard_loads"], dtype=float)
        self.set_shares(loads)
        for shard_index, runtime in enumerate(self.runtimes):
            if not self._live[shard_index]:
                continue
            if live_mask is not None and not live_mask[shard_index]:
                continue
            runtime.controller.prime_phi_hint(self._shard_phi[shard_index])
        self.rebalances += 1
        o = get_obs()
        if o.enabled:
            o.registry.counter(
                "repro_shard_rebalances_total",
                "Coordinator global re-solves pushed to shard dispatchers",
            ).inc()

    # -- failure seams (driven by the shard supervisor) ------------------------------

    def kill_shard(self, shard_index: int) -> None:
        """Hard-kill one shard's control plane (``shard-crash``).

        Models a process kill faithfully: the durable state is
        abandoned exactly as the flushed appends left it (no farewell
        checkpoint), the shard stops taking arrivals/completions, and
        the dead runtime object is kept only so a restore can read its
        derived config.
        """
        runtime = self.runtimes[shard_index]
        if runtime._recovery is not None:
            runtime._recovery.abandon()
        self._live[shard_index] = False

    def stall_shard(self, shard_index: int) -> None:
        """Hang one shard (``shard-stall``): alive, but reading nothing."""
        self._live[shard_index] = False

    def revive_shard(
        self,
        shard_index: int,
        runtime: LoadDistributionRuntime | None = None,
        *,
        now: float | None = None,
    ) -> None:
        """Splice a shard back in — optionally with a restored runtime.

        Health signals that arrived while the shard was dark are
        re-delivered in order (a stalled process drains its queue on
        wake-up; a restored one must learn the current server states),
        stamped at the splice time ``now`` — the shard learns late,
        which is exactly the detection latency a hung process pays.
        """
        if runtime is not None:
            self.runtimes[shard_index] = runtime
        self._live[shard_index] = True
        pending, self._pending_signals[shard_index] = (
            self._pending_signals[shard_index],
            [],
        )
        target = self.runtimes[shard_index]
        for kind, local, when in pending:
            at = when if now is None else max(now, when)
            if kind == "down":
                target.server_down(local, at)
            else:
                target.server_up(local, at)

    def server_down(self, index: int, now: float) -> None:
        """Global-index health signal, forwarded to the owning shard."""
        self._deliver_health("down", index, now)

    def server_up(self, index: int, now: float) -> None:
        """Global-index health signal, forwarded to the owning shard."""
        self._deliver_health("up", index, now)

    def _deliver_health(self, kind: str, index: int, now: float) -> None:
        shard = int(self._owner[index])
        local = int(self._local_of[index])
        if self._live[shard]:
            if kind == "down":
                self.runtimes[shard].server_down(local, now)
            else:
                self.runtimes[shard].server_up(local, now)
        else:
            self._pending_signals[shard].append((kind, local, now))

    # -- engine-facing hook trio -----------------------------------------------------

    def observe_arrival(self, now: float) -> None:
        """Draw the owning shard, then feed that shard's estimator."""
        self._pending = int(
            np.searchsorted(self._cum, self._rng.random(), side="right")
        )
        if self._live[self._pending]:
            self.runtimes[self._pending].observe_arrival(now)

    def route(self, servers=None) -> int:
        """Delegate to the pending shard; map its pick to global index."""
        shard = self._pending
        if not self._live[shard]:
            # The split still points at a dead/stalled shard (failover
            # has not re-solved yet, or the share is too small to
            # bother): the task is shed, and counted so the chaos
            # harness can bound shed during failover.
            self.failover_shed += 1
            return -1
        local = self.runtimes[shard].route()
        if local < 0:
            return -1
        return int(self._members[shard][local])

    def route_offer(self, offer) -> int:
        """Offer-aware delegate: the admission class/attempt travel
        through to the owning shard's controller.

        Unlike :meth:`route`, a draw that lands on a dead shard is
        *re-admitted*: when the fleet runs admission control the offer
        is re-drawn once among the live shards (shares renormalized),
        so a failed-over shard degrades into extra load on the
        survivors — where the admission layer decides — instead of a
        blanket shed.  Without admission the legacy shed-at-failover
        behaviour stays pinned.
        """
        shard = self._pending
        if not self._live[shard]:
            shard = self._readmit_shard()
            if shard < 0:
                self.failover_shed += 1
                return -1
        runtime = self.runtimes[shard]
        forward = getattr(runtime, "route_offer", None)
        local = runtime.route() if forward is None else forward(offer)
        if local < 0:
            return -1
        return int(self._members[shard][local])

    def _readmit_shard(self) -> int:
        """One renormalized re-draw among live shards (admission only)."""
        if self.runtimes[self._pending]._admission is None or not self._live.any():
            return -1
        weights = np.where(self._live, self._shares, 0.0)
        total = float(weights.sum())
        if total <= 0.0:
            weights = self._live.astype(float)
            total = float(weights.sum())
        cum = np.cumsum(weights / total)
        cum[-1] = 1.0
        shard = int(np.searchsorted(cum, self._rng.random(), side="right"))
        self.readmitted += 1
        return shard

    def observe_completion(self, task: SimTask, now: float) -> None:
        """Forward the completion to the runtime owning the server.

        The task carries the *global* server index; the owning runtime
        keeps its queue state (and any state-aware routing policy) in
        *local* index space, so the completion is re-mapped through
        ``_local_of``.  Completions for dead shards are dropped — the
        restored runtime's in-flight counts come from its checkpoint +
        journal, and the policies tolerate the resulting stale counts
        (clamped decrements, validated idle-stack pops).
        """
        shard = int(self._owner[task.server_index])
        if self._live[shard]:
            self.runtimes[shard].observe_completion(
                task, now, server_index=int(self._local_of[task.server_index])
            )
            self.completions_by_shard[shard] += 1
        else:
            self.dropped_completions += 1

    # -- views -----------------------------------------------------------------------

    def current_weights(self) -> np.ndarray:
        """Full-group routing fractions implied by shares × inner splits."""
        per_shard = [
            share * runtime.current_weights
            for share, runtime in zip(self._shares, self.runtimes)
        ]
        return self.plan.expand(per_shard)


@dataclass(frozen=True)
class ShardedRuntimeReport:
    """Output of one multi-dispatcher closed-loop run."""

    #: Post-warmup simulation statistics.
    sim: SimulationResult
    #: The partition the run was sharded by.
    plan: ShardPlan
    #: The composite dispatcher (shares, rebalance count, inner runtimes).
    dispatcher: ShardedDispatcher
    #: The arrival trace the run was driven with.
    trace: RateTrace
    #: Coordinator ticks performed (excluding the bootstrap solve).
    rebalances: int
    #: Final per-shard arrival shares.
    shard_shares: tuple[float, ...]
    #: Per-shard recovery directories (empty when durability is off).
    recovery_dirs: tuple[str, ...] = field(default=())
    #: The shard supervisor, when the run was supervised (fleet
    #: metrics, failover/restore timelines); ``None`` otherwise.
    supervisor: object | None = None
    #: Per-splice :class:`~repro.recovery.resume.RestoreReport` objects
    #: from mid-run shard crash recoveries, in splice order.
    restores: tuple = ()

    @property
    def runtimes(self) -> tuple[LoadDistributionRuntime, ...]:
        """The per-shard runtimes, with final health/metrics state."""
        return tuple(self.dispatcher.runtimes)


def run_sharded_closed_loop(
    group: BladeServerGroup,
    trace: RateTrace,
    config: RuntimeConfig = RuntimeConfig(),
    shard_config: ShardConfig = ShardConfig(),
    *,
    horizon: float,
    warmup: float = 0.0,
    seed: int | None = 0,
    rebalance_period: float | None = None,
    collect_tasks: bool = True,
    fault_plan=None,
    supervisor_config=None,
    workload=None,
) -> ShardedRuntimeReport:
    """Drive ``n_shards`` concurrent shard dispatchers, closed loop.

    Partitions ``group`` per ``shard_config``, bootstraps the global
    split with one hierarchical solve at ``trace.initial_rate``, then
    runs one :class:`~repro.runtime.loop.LoadDistributionRuntime` per
    shard against the discrete-event engine, with the coordinator
    re-solving globally every ``rebalance_period`` of simulated time
    (default: the runtime's ``resolve_period`` when finite, else a
    tenth of the horizon).

    When ``config.recovery.enabled``, each shard journals and
    checkpoints under ``<recovery.directory>/shard-XX/`` — concurrent
    generations that never share files, finalized at run end.

    Passing ``fault_plan`` and/or ``supervisor_config`` supervises the
    run (see :class:`~repro.shard.supervisor.ShardSupervisor`):
    coordinator ticks gain retry/backoff/circuit-breaker protection, a
    heartbeat failure detector sweeps the shard fleet, and the plan's
    shard-targeted fault specs (``shard-crash`` / ``shard-stall`` /
    ``shard-journal-corrupt``) compile into engine control events —
    kills, stalls, and mid-run crash recoveries spliced back into the
    running engine.  Solver fault windows wrap the *coordinator* solve
    seam (scope them to ``methods=("sharded",)``), estimator windows
    the coordinator's aggregate rate view, and health windows are
    delivered to the owning shard through the dispatcher.  Plain
    ``crash`` specs are rejected: at fleet scale the control plane has
    no single process to kill — use ``shard-crash``.

    Passing a :class:`~repro.sim.arrivals.ClientWorkload` stamps every
    arrival with a priority class and routes it through
    :meth:`ShardedDispatcher.route_offer`, so per-shard admission
    controllers (``config.admission``) see the fleet's offered load
    split by shard shares, and offers bound for a dead shard are
    re-admitted to the live survivors instead of blanket-shed.

    Returns a :class:`ShardedRuntimeReport`; the per-shard runtimes
    (metrics, resolve logs, recovery state) ride along on the
    dispatcher, fleet-level metrics on ``report.supervisor``.
    """
    if horizon <= 0.0:
        raise ParameterError(f"horizon must be > 0, got {horizon}")
    plan = partition_group(group, shard_config)

    shard_fault_specs = ()
    if fault_plan is not None:
        if fault_plan.crash_specs:
            raise ParameterError(
                "whole-control-plane 'crash' faults are undefined for the "
                "sharded loop (there is no single process to kill); use "
                "'shard-crash' with a target shard index"
            )
        shard_fault_specs = fault_plan.shard_specs
        for spec in shard_fault_specs:
            if int(spec.params["shard"]) >= plan.n_shards:
                raise ParameterError(
                    f"{spec.kind!r} targets shard {spec.params['shard']}, "
                    f"plan has {plan.n_shards}"
                )
        needs_recovery = [
            s for s in shard_fault_specs if s.kind != "shard-stall"
        ]
        if needs_recovery and not config.recovery.enabled:
            raise ParameterError(
                "shard-crash / shard-journal-corrupt faults require "
                "RuntimeConfig.recovery.enabled (there is nothing to "
                "restore the shard from otherwise)"
            )

    solver_kwargs = {} if config.solver_tol is None else {"tol": config.solver_tol}
    bootstrap = solve_sharded(
        group,
        trace.initial_rate,
        config.discipline,
        plan=plan,
        **solver_kwargs,
    )
    loads = np.asarray(bootstrap.metadata["shard_loads"], dtype=float)

    seeds = shard_seeds(config.seed, plan.n_shards)
    runtimes = []
    shard_configs = []
    initial_rates = []
    recovery_dirs = []
    for shard in plan.shards:
        shard_cfg = _shard_runtime_config(config, shard.index, seeds[shard.index])
        shard_configs.append(shard_cfg)
        if shard_cfg.recovery.enabled:
            recovery_dirs.append(shard_cfg.recovery.directory)
        # A shard the bootstrap split left idle still needs a positive
        # design rate to seed its estimator prior and first local solve.
        initial = max(float(loads[shard.index]), 1e-9 * shard.capacity)
        initial_rates.append(initial)
        runtimes.append(LoadDistributionRuntime(shard.group, initial, shard_cfg))
        runtimes[-1].controller.prime_phi_hint(
            bootstrap.metadata["shard_phi"][shard.index]
        )

    solve_fn = None
    if fault_plan is not None:
        solve_fn = fault_plan.wrap_solver(_default_coordinator_solve)
    dispatcher = ShardedDispatcher(
        plan,
        runtimes,
        loads,
        np.random.default_rng(
            np.random.SeedSequence([0x5AD, config.seed]).generate_state(1)[0]
        ),
        solver_tol=config.solver_tol,
        solve_fn=solve_fn,
    )
    if fault_plan is not None:
        dispatcher._rate_view = fault_plan.wrap_estimator(dispatcher._rate_view)

    supervisor = None
    supervised = fault_plan is not None or supervisor_config is not None
    if supervised:
        # Imported lazily, same reason as the flat loop's supervisor:
        # repro.faults imports runtime modules and would cycle.
        from .supervisor import ShardSupervisor, ShardSupervisorConfig

        supervisor = ShardSupervisor(
            dispatcher,
            supervisor_config
            if supervisor_config is not None
            else ShardSupervisorConfig(),
        )

    if rebalance_period is None:
        rebalance_period = (
            config.resolve_period
            if np.isfinite(config.resolve_period)
            else horizon / 10.0
        )
    controls = []
    if rebalance_period > 0.0 and np.isfinite(rebalance_period):
        tick = rebalance_period
        while tick < horizon:
            if supervisor is not None:
                controls.append((tick, _supervised_rebalance_action(supervisor)))
            else:
                controls.append((tick, _rebalance_action(dispatcher)))
            tick += rebalance_period

    if supervisor is not None:
        beat = supervisor.config.heartbeat_interval
        if beat > 0.0 and np.isfinite(beat):
            t = beat
            while t < horizon:
                controls.append((t, _heartbeat_action(supervisor)))
                t += beat

    if fault_plan is not None:
        controls.extend(fault_plan.health_controls(dispatcher, horizon))
        for spec in shard_fault_specs:
            shard_index = int(spec.params["shard"])
            shard = plan.shards[shard_index]
            if spec.kind == "shard-stall":
                controls.append((spec.start, _stall_action(supervisor, shard_index)))
                if spec.end < horizon:
                    controls.append(
                        (spec.end, _stall_end_action(supervisor, shard_index))
                    )
                continue
            corrupt = spec.kind == "shard-journal-corrupt"
            restore_at = spec.start + float(spec.params.get("restore_delay", 0.0))
            if restore_at <= spec.start:
                # Atomic kill + restore inside one control event: the
                # PR 5 crash-equivalence shape, now at shard scope.
                controls.append(
                    (
                        spec.start,
                        _crash_restore_action(
                            supervisor,
                            shard,
                            shard_configs[shard_index],
                            initial_rates[shard_index],
                            corrupt=corrupt,
                        ),
                    )
                )
            else:
                controls.append(
                    (spec.start, _kill_action(supervisor, shard_index, corrupt))
                )
                if restore_at < horizon:
                    controls.append(
                        (
                            restore_at,
                            _restore_action(
                                supervisor,
                                shard,
                                shard_configs[shard_index],
                                initial_rates[shard_index],
                            ),
                        )
                    )
        # Same compilation the flat loop applies: a retry-storm window
        # slashes client backoff for its duration; burst-overload specs
        # are encoded in the trace by the overload chaos harness.
        for spec in fault_plan.overload_specs:
            if spec.kind != "retry-storm":
                continue
            scale = float(spec.params.get("backoff_scale", 0.1))
            controls.append((spec.start, _backoff_action(scale)))
            if spec.end < horizon:
                controls.append((spec.end, _backoff_action(1.0)))

    sim_config = SimulationConfig(
        total_generic_rate=trace.initial_rate,
        fractions=tuple(dispatcher.current_weights()),
        discipline=Discipline.coerce(config.discipline),
        horizon=horizon,
        warmup=warmup,
        seed=seed,
    )
    sim = GroupSimulation(
        group,
        sim_config,
        dispatcher=dispatcher,
        arrivals=TracedPoissonArrivals(trace),
        arrival_listener=dispatcher.observe_arrival,
        completion_listener=dispatcher.observe_completion,
        controls=controls,
        collect_tasks=collect_tasks,
        workload=workload,
    )
    if fault_plan is not None:
        # The flat loop binds the plan's clock inside the runtime
        # constructor; at fleet scale no single shard runtime owns the
        # plan, so the harness binds it to the engine clock directly.
        fault_plan.bind_clock(lambda: sim.now)
    result = sim.run()
    for runtime in dispatcher.runtimes:
        if runtime._recovery is not None:
            runtime._recovery.finalize()
    return ShardedRuntimeReport(
        sim=result,
        plan=plan,
        dispatcher=dispatcher,
        trace=trace,
        rebalances=dispatcher.rebalances,
        shard_shares=tuple(float(s) for s in dispatcher.shares),
        recovery_dirs=tuple(recovery_dirs),
        supervisor=supervisor,
        restores=tuple(supervisor.restore_reports) if supervisor is not None else (),
    )


def _rebalance_action(dispatcher: ShardedDispatcher):
    def action(sim, now: float) -> None:
        dispatcher.rebalance(now)

    return action


def _supervised_rebalance_action(supervisor):
    def action(sim, now: float) -> None:
        supervisor.tick(now)

    return action


def _heartbeat_action(supervisor):
    def action(sim, now: float) -> None:
        supervisor.heartbeat(now)

    return action


def _stall_action(supervisor, shard_index: int):
    def action(sim, now: float) -> None:
        supervisor.stall_shard(shard_index, now)

    return action


def _stall_end_action(supervisor, shard_index: int):
    def action(sim, now: float) -> None:
        supervisor.restore_shard(shard_index, now)

    return action


def _kill_action(supervisor, shard_index: int, corrupt: bool):
    def action(sim, now: float) -> None:
        supervisor.kill_shard(shard_index, now, corrupt=corrupt)

    return action


def _restore_action(supervisor, shard, shard_cfg, initial_rate: float):
    """Rebuild one shard's control plane from its own durable state."""

    def action(sim, now: float) -> None:
        from ..recovery.resume import restore_runtime

        runtime, report = restore_runtime(
            shard.group, shard_cfg, initial_rate=initial_rate
        )
        supervisor.restore_shard(shard.index, now, runtime=runtime, report=report)

    return action


def _crash_restore_action(supervisor, shard, shard_cfg, initial_rate: float, corrupt: bool):
    """Kill and immediately restore one shard inside one control event."""

    kill = _kill_action(supervisor, shard.index, corrupt)
    restore = _restore_action(supervisor, shard, shard_cfg, initial_rate)

    def action(sim, now: float) -> None:
        kill(sim, now)
        restore(sim, now)

    return action
