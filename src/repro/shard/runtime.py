"""Multi-dispatcher closed loop: one runtime per shard, coordinated.

The flat closed loop (:mod:`repro.runtime.loop`) is one dispatcher that
sees every server.  At fleet scale the control plane is sharded: each
shard runs its *own* :class:`~repro.runtime.loop.LoadDistributionRuntime`
— estimator, drift-triggered controller, router, and (when enabled) its
own write-ahead journal and checkpoint generation under
``<recovery.directory>/shard-XX/`` — over just its members, while the
coordinator periodically re-solves the *global* split
(:func:`repro.shard.coordinator.solve_sharded`) from the shards'
aggregated rate estimates and pushes the result down as

* **shard shares** — the fraction of the arrival stream each shard
  dispatcher owns (Bernoulli splitting keeps every shard's substream
  Poisson, so each inner runtime still operates in the paper's model);
* **per-shard warm starts** — the converged global multiplier primes
  every shard controller's ``phi_hint``
  (:meth:`~repro.runtime.controller.ResolveController.prime_phi_hint`),
  so the next drift-triggered local re-solve starts in the quadratic
  basin.

Between coordinator ticks the shards are fully autonomous: local drift
re-solves, local failures, local shedding — no cross-shard traffic at
all, which is the operational point of the architecture.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from ..core.exceptions import ParameterError
from ..core.response import Discipline
from ..core.server import BladeServerGroup
from ..obs import get_obs
from ..runtime.loop import LoadDistributionRuntime, RuntimeConfig
from ..sim.arrivals import TracedPoissonArrivals
from ..sim.engine import GroupSimulation, SimulationConfig, SimulationResult
from ..sim.task import SimTask
from ..workloads.traces import RateTrace
from .coordinator import solve_sharded
from .partition import ShardConfig, ShardPlan, partition_group

__all__ = ["ShardedDispatcher", "ShardedRuntimeReport", "run_sharded_closed_loop"]


def _shard_runtime_config(
    config: RuntimeConfig, shard_index: int
) -> RuntimeConfig:
    """Derive shard ``shard_index``'s runtime config from the base one.

    Each dispatcher gets an independent random seed and — when
    durability is on — its own recovery directory, so journals and
    checkpoint generations never interleave across shards.
    """
    recovery = config.recovery
    if recovery.enabled:
        recovery = replace(
            recovery,
            directory=os.path.join(
                recovery.directory, f"shard-{shard_index:02d}"
            ),
        )
    return replace(
        config,
        seed=config.seed + 7919 * (shard_index + 1),
        recovery=recovery,
    )


class ShardedDispatcher:
    """Engine-facing composite of per-shard dispatchers.

    Implements the same protocol as a single
    :class:`~repro.runtime.loop.LoadDistributionRuntime` — the
    ``observe_arrival`` / ``route`` / ``observe_completion`` hook trio —
    by Bernoulli-splitting the arrival stream across shards (per the
    coordinator's shares) and delegating everything else to the owning
    shard's runtime.  ``observe_arrival`` runs *before* ``route`` on
    every generic arrival (the engine guarantees the ordering), so the
    shard drawn there is the one ``route`` delegates to.
    """

    def __init__(
        self,
        plan: ShardPlan,
        runtimes: Sequence[LoadDistributionRuntime],
        shares: np.ndarray,
        rng: np.random.Generator,
        solver_tol: float | None = None,
    ) -> None:
        if len(runtimes) != plan.n_shards:
            raise ParameterError(
                f"need one runtime per shard: {plan.n_shards} shards, "
                f"{len(runtimes)} runtimes"
            )
        self.plan = plan
        self.runtimes = tuple(runtimes)
        self._members = [np.asarray(s.members) for s in plan.shards]
        self._owner = plan.assignment
        self._rng = rng
        self._tol = solver_tol
        self._pending = 0
        self._shard_phi: dict[int, float] | None = None
        self.rebalances = 0
        self.set_shares(shares)

    # -- coordinator-facing ----------------------------------------------------------

    @property
    def shares(self) -> np.ndarray:
        """Current per-shard fractions of the arrival stream."""
        return self._shares.copy()

    def set_shares(self, shares: np.ndarray) -> None:
        """Adopt new per-shard arrival fractions (renormalized)."""
        shares = np.asarray(shares, dtype=float)
        if shares.shape != (self.plan.n_shards,) or (shares < 0.0).any():
            raise ParameterError("shares must be one non-negative value per shard")
        total = float(shares.sum())
        if total <= 0.0:
            shares = np.full(self.plan.n_shards, 1.0 / self.plan.n_shards)
            total = 1.0
            self._shares = shares
        else:
            self._shares = shares / total
        self._cum = np.cumsum(self._shares)
        self._cum[-1] = 1.0

    def offered_rate(self, now: float) -> float:
        """Aggregate offered generic rate across shard estimators."""
        return sum(rt._offered_estimate(now) for rt in self.runtimes)

    def rebalance(self, now: float) -> None:
        """One coordinator tick: global re-solve, push shares and hints.

        Runs the hierarchical solve on the full group at the shards'
        aggregated rate estimate (warm-started from the previous tick's
        per-shard multipliers), adopts the resulting shard load shares
        for arrival splitting, and primes every shard controller's
        ``phi_hint`` with the converged global multiplier.
        """
        group = self.plan.group
        lam = min(
            self.offered_rate(now),
            self.runtimes[0].config.utilization_cap * group.max_generic_rate,
        )
        kwargs = {} if self._tol is None else {"tol": self._tol}
        result = solve_sharded(
            group,
            lam,
            self.runtimes[0].config.discipline,
            phi_hint=self._shard_phi,
            plan=self.plan,
            **kwargs,
        )
        self._shard_phi = dict(result.metadata["shard_phi"])
        loads = np.asarray(result.metadata["shard_loads"], dtype=float)
        self.set_shares(loads)
        for shard_index, runtime in enumerate(self.runtimes):
            runtime.controller.prime_phi_hint(self._shard_phi[shard_index])
        self.rebalances += 1
        o = get_obs()
        if o.enabled:
            o.registry.counter(
                "repro_shard_rebalances_total",
                "Coordinator global re-solves pushed to shard dispatchers",
            ).inc()

    # -- engine-facing hook trio -----------------------------------------------------

    def observe_arrival(self, now: float) -> None:
        """Draw the owning shard, then feed that shard's estimator."""
        self._pending = int(
            np.searchsorted(self._cum, self._rng.random(), side="right")
        )
        self.runtimes[self._pending].observe_arrival(now)

    def route(self, servers=None) -> int:
        """Delegate to the pending shard; map its pick to global index."""
        shard = self._pending
        local = self.runtimes[shard].route()
        if local < 0:
            return -1
        return int(self._members[shard][local])

    def observe_completion(self, task: SimTask, now: float) -> None:
        """Forward the completion to the runtime owning the server."""
        self.runtimes[int(self._owner[task.server_index])].observe_completion(
            task, now
        )

    # -- views -----------------------------------------------------------------------

    def current_weights(self) -> np.ndarray:
        """Full-group routing fractions implied by shares × inner splits."""
        per_shard = [
            share * runtime.current_weights
            for share, runtime in zip(self._shares, self.runtimes)
        ]
        return self.plan.expand(per_shard)


@dataclass(frozen=True)
class ShardedRuntimeReport:
    """Output of one multi-dispatcher closed-loop run."""

    #: Post-warmup simulation statistics.
    sim: SimulationResult
    #: The partition the run was sharded by.
    plan: ShardPlan
    #: The composite dispatcher (shares, rebalance count, inner runtimes).
    dispatcher: ShardedDispatcher
    #: The arrival trace the run was driven with.
    trace: RateTrace
    #: Coordinator ticks performed (excluding the bootstrap solve).
    rebalances: int
    #: Final per-shard arrival shares.
    shard_shares: tuple[float, ...]
    #: Per-shard recovery directories (empty when durability is off).
    recovery_dirs: tuple[str, ...] = field(default=())

    @property
    def runtimes(self) -> tuple[LoadDistributionRuntime, ...]:
        """The per-shard runtimes, with final health/metrics state."""
        return self.dispatcher.runtimes


def run_sharded_closed_loop(
    group: BladeServerGroup,
    trace: RateTrace,
    config: RuntimeConfig = RuntimeConfig(),
    shard_config: ShardConfig = ShardConfig(),
    *,
    horizon: float,
    warmup: float = 0.0,
    seed: int | None = 0,
    rebalance_period: float | None = None,
    collect_tasks: bool = True,
) -> ShardedRuntimeReport:
    """Drive ``n_shards`` concurrent shard dispatchers, closed loop.

    Partitions ``group`` per ``shard_config``, bootstraps the global
    split with one hierarchical solve at ``trace.initial_rate``, then
    runs one :class:`~repro.runtime.loop.LoadDistributionRuntime` per
    shard against the discrete-event engine, with the coordinator
    re-solving globally every ``rebalance_period`` of simulated time
    (default: the runtime's ``resolve_period`` when finite, else a
    tenth of the horizon).

    When ``config.recovery.enabled``, each shard journals and
    checkpoints under ``<recovery.directory>/shard-XX/`` — concurrent
    generations that never share files, finalized at run end.

    Returns a :class:`ShardedRuntimeReport`; the per-shard runtimes
    (metrics, resolve logs, recovery state) ride along on the
    dispatcher.
    """
    if horizon <= 0.0:
        raise ParameterError(f"horizon must be > 0, got {horizon}")
    plan = partition_group(group, shard_config)
    solver_kwargs = {} if config.solver_tol is None else {"tol": config.solver_tol}
    bootstrap = solve_sharded(
        group,
        trace.initial_rate,
        config.discipline,
        plan=plan,
        **solver_kwargs,
    )
    loads = np.asarray(bootstrap.metadata["shard_loads"], dtype=float)

    runtimes = []
    recovery_dirs = []
    for shard in plan.shards:
        shard_cfg = _shard_runtime_config(config, shard.index)
        if shard_cfg.recovery.enabled:
            recovery_dirs.append(shard_cfg.recovery.directory)
        # A shard the bootstrap split left idle still needs a positive
        # design rate to seed its estimator prior and first local solve.
        initial = max(float(loads[shard.index]), 1e-9 * shard.capacity)
        runtimes.append(LoadDistributionRuntime(shard.group, initial, shard_cfg))
        runtimes[-1].controller.prime_phi_hint(
            bootstrap.metadata["shard_phi"][shard.index]
        )

    dispatcher = ShardedDispatcher(
        plan,
        runtimes,
        loads,
        np.random.default_rng(
            np.random.SeedSequence([0x5AD, config.seed]).generate_state(1)[0]
        ),
        solver_tol=config.solver_tol,
    )

    if rebalance_period is None:
        rebalance_period = (
            config.resolve_period
            if np.isfinite(config.resolve_period)
            else horizon / 10.0
        )
    controls = []
    if rebalance_period > 0.0 and np.isfinite(rebalance_period):
        tick = rebalance_period
        while tick < horizon:
            controls.append((tick, _rebalance_action(dispatcher)))
            tick += rebalance_period

    sim_config = SimulationConfig(
        total_generic_rate=trace.initial_rate,
        fractions=tuple(dispatcher.current_weights()),
        discipline=Discipline.coerce(config.discipline),
        horizon=horizon,
        warmup=warmup,
        seed=seed,
    )
    sim = GroupSimulation(
        group,
        sim_config,
        dispatcher=dispatcher,
        arrivals=TracedPoissonArrivals(trace),
        arrival_listener=dispatcher.observe_arrival,
        completion_listener=dispatcher.observe_completion,
        controls=controls,
        collect_tasks=collect_tasks,
    )
    result = sim.run()
    for runtime in runtimes:
        if runtime._recovery is not None:
            runtime._recovery.finalize()
    return ShardedRuntimeReport(
        sim=result,
        plan=plan,
        dispatcher=dispatcher,
        trace=trace,
        rebalances=dispatcher.rebalances,
        shard_shares=tuple(float(s) for s in dispatcher.shares),
        recovery_dirs=tuple(recovery_dirs),
    )


def _rebalance_action(dispatcher: ShardedDispatcher):
    def action(sim, now: float) -> None:
        dispatcher.rebalance(now)

    return action
