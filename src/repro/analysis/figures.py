"""Figure-series builders: the ``T'`` vs. ``lambda'`` curves of Figs. 4–15.

Every figure in the paper's Section 5 is a family of curves — one per
server group (or per parameter value) — of the *minimized* mean generic
response time against the total generic arrival rate, under one
discipline.  :func:`build_figure` computes exactly that: for each group
and each grid point it runs the optimizer and records ``T'``.

The output :class:`FigureSeries` is a plain data object (labels, the
shared x-grid, one y-vector per curve) consumed by the text renderer,
the benchmarks, and the EXPERIMENTS.md generator; nothing here touches
plotting libraries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.exceptions import ParameterError
from ..core.response import Discipline
from ..core.server import BladeServerGroup
from ..api import solve_sweep
from ..workloads.sweeps import shared_sweep

__all__ = ["FigureSeries", "build_figure"]


@dataclass(frozen=True)
class FigureSeries:
    """One reproduced figure: a family of ``T'(lambda')`` curves.

    Attributes
    ----------
    figure_id:
        Paper figure number/label, e.g. ``"fig4"``.
    discipline:
        The queueing discipline all curves were computed under.
    rates:
        The shared ``lambda'`` grid (x-axis).
    labels:
        One label per curve (e.g. ``"Group 1 (m=49)"``).
    values:
        Array of shape ``(len(labels), len(rates))`` holding ``T'``.
    """

    figure_id: str
    discipline: Discipline
    rates: np.ndarray
    labels: tuple[str, ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.values.shape != (len(self.labels), len(self.rates)):
            raise ParameterError(
                f"values shape {self.values.shape} inconsistent with "
                f"{len(self.labels)} labels x {len(self.rates)} rates"
            )

    def curve(self, label: str) -> np.ndarray:
        """The y-vector of the curve with the given label."""
        try:
            i = self.labels.index(label)
        except ValueError:
            raise ParameterError(
                f"no curve labelled {label!r}; have {self.labels}"
            ) from None
        return self.values[i]

    def to_csv(self) -> str:
        """Comma-separated rendering: header row, one row per grid point.

        Columns: ``lambda_prime`` then one column per curve label
        (commas inside labels are replaced to keep the format trivially
        parseable without quoting rules).
        """
        safe = [label.replace(",", ";") for label in self.labels]
        lines = [",".join(["lambda_prime"] + safe)]
        for j, lam in enumerate(self.rates):
            cells = [f"{lam:.10g}"] + [
                f"{self.values[i, j]:.10g}" for i in range(len(self.labels))
            ]
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    def render(self, float_fmt: str = "{:.4f}") -> str:
        """Plain-text table: one row per grid point, one column per curve."""
        header = ["lambda'"] + list(self.labels)
        widths = [max(10, len(h) + 2) for h in header]
        lines = [
            f"{self.figure_id} ({self.discipline.value})",
            "".join(h.rjust(w) for h, w in zip(header, widths)),
        ]
        for j, lam in enumerate(self.rates):
            cells = [float_fmt.format(lam)] + [
                float_fmt.format(self.values[i, j]) for i in range(len(self.labels))
            ]
            lines.append("".join(c.rjust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)


def build_figure(
    figure_id: str,
    groups: Sequence[BladeServerGroup],
    labels: Sequence[str],
    discipline: Discipline | str,
    points: int = 25,
    hi_fraction: float = 0.95,
    method: str = "kkt",
    rates: np.ndarray | None = None,
    warm_start: bool = True,
) -> FigureSeries:
    """Reproduce one paper figure.

    Parameters
    ----------
    figure_id:
        Label stored in the output (``"fig4"`` ... ``"fig15"``).
    groups, labels:
        The curve family: equally many groups and labels.
    discipline:
        ``fcfs`` for even-numbered figures 4–14, ``priority`` for odd.
    points, hi_fraction:
        Grid resolution and how close to the shared saturation point
        the sweep reaches (ignored when ``rates`` is given).
    method:
        Solver backend used at every grid point.
    rates:
        Optional explicit ``lambda'`` grid overriding the shared sweep.
    warm_start:
        Reuse each point's converged multiplier to bracket the next one
        (bisection-family backends only; see
        :func:`repro.api.solve_sweep`).
    """
    if len(groups) != len(labels):
        raise ParameterError(
            f"{len(groups)} groups but {len(labels)} labels"
        )
    if not groups:
        raise ParameterError("build_figure needs at least one group")
    disc = Discipline.coerce(discipline)
    if rates is None:
        rates = shared_sweep(groups, points=points, hi_fraction=hi_fraction)
    else:
        rates = np.asarray(rates, dtype=float)
    values = np.empty((len(groups), len(rates)))
    for i, group in enumerate(groups):
        results = solve_sweep(
            group, rates, discipline=disc, method=method, warm_start=warm_start
        )
        values[i] = [r.mean_response_time for r in results]
    return FigureSeries(
        figure_id=figure_id,
        discipline=disc,
        rates=rates,
        labels=tuple(labels),
        values=values,
    )
