"""Sensitivity of the *optimized* ``T'`` to the model parameters.

The paper's Section 5 closes with a qualitative rule of thumb (grow
``m_i`` or ``s_i``, shrink ``rbar`` or ``lambda''_i``).  This module
makes it quantitative: the derivative of the optimal value
``T'*(theta)`` with respect to any model parameter ``theta``.

The key tool is the **envelope theorem**: at the optimum, the rates are
chosen so that feasible first-order reallocations do not change ``T'``;
therefore the total derivative of the optimal value with respect to a
parameter equals the *partial* derivative of the objective with the
rate vector held fixed at the optimum.  No re-optimization is needed —
which both makes the sensitivities cheap and gives the test suite a
sharp cross-check (re-optimized finite differences must agree).

Provided sensitivities (per unit of the parameter):

* ``d T'* / d lambda''_j`` — analytic, via the chain rule through
  ``rho_j`` (and ``rho''_j`` under priority).
* ``d T'* / d s_j`` — central finite difference of the fixed-rate
  objective (the service-time and utilization channels partially
  cancel; FD is the robust choice).
* ``d T'* / d rbar`` — same technique, all servers at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import ParameterError
from ..core.response import (
    Discipline,
    d_generic_response_time_drho,
    generic_response_time,
)
from ..core.server import BladeServerGroup
from ..core.solvers import dispatch

__all__ = ["SensitivityReport", "optimal_value_sensitivities"]

_FD_STEP = 1e-6


@dataclass(frozen=True)
class SensitivityReport:
    """All envelope-theorem sensitivities at one operating point.

    Units: seconds of mean response time per unit of the parameter.
    Negative values mean the parameter *reduces* ``T'`` when increased.
    """

    #: The optimal T' the sensitivities are taken around.
    t_prime: float
    #: ``d T'* / d lambda''_j`` for each server (positive: preload hurts).
    d_special: np.ndarray
    #: ``d T'* / d s_j`` for each server (negative: speed helps).
    d_speed: np.ndarray
    #: ``d T'* / d rbar`` (positive: bigger tasks hurt).
    d_rbar: float

    def render(self) -> str:
        lines = [f"sensitivities of T'* = {self.t_prime:.6f}:"]
        for j in range(self.d_special.size):
            lines.append(
                f"  server {j + 1}: dT'/dlambda''_{j + 1} = "
                f"{self.d_special[j]:+.6f}, dT'/ds_{j + 1} = "
                f"{self.d_speed[j]:+.6f}"
            )
        lines.append(f"  dT'/drbar = {self.d_rbar:+.6f}")
        return "\n".join(lines)


def _fixed_rate_objective(
    sizes,
    speeds,
    specials,
    rbar: float,
    rates: np.ndarray,
    discipline: Discipline,
) -> float:
    """The group objective with the rate vector frozen (envelope inner)."""
    total = float(rates.sum())
    t = 0.0
    for i in range(len(sizes)):
        if rates[i] == 0.0:
            continue
        t += (
            rates[i]
            / total
            * generic_response_time(
                int(sizes[i]),
                rbar / float(speeds[i]),
                float(rates[i]),
                float(specials[i]),
                discipline,
            )
        )
    return t


def optimal_value_sensitivities(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
    method: str = "kkt",
) -> SensitivityReport:
    """Envelope-theorem sensitivities of the optimized ``T'``.

    Raises
    ------
    InfeasibleError
        If the operating point is infeasible.
    ParameterError
        On invalid inputs (via the solver).
    """
    disc = Discipline.coerce(discipline)
    res = dispatch(group, total_rate, disc, method)
    rates = res.generic_rates
    weights = res.fractions
    sizes = group.sizes
    speeds = group.speeds
    specials = group.special_rates
    rbar = group.rbar

    # Analytic d/d lambda''_j: only server j's term moves, through rho_j
    # (and rho''_j under priority, where T'_j has the 1/(1-rho''_j)
    # factor whose argument also shifts).
    d_special = np.zeros(group.n)
    for j in range(group.n):
        if rates[j] == 0.0:
            # A parked server contributes zero weight; an infinitesimal
            # preload change cannot move T' through it.
            continue
        m = int(sizes[j])
        xbar = rbar / float(speeds[j])
        rho = float(res.utilizations[j])
        rho_s = float(specials[j]) * xbar / m
        drho = xbar / m  # d rho_j / d lambda''_j
        dt = d_generic_response_time_drho(m, xbar, rho, rho_s, disc) * drho
        if disc is Discipline.PRIORITY:
            # Extra channel: the 1/(1-rho'') factor. T' = xbar(1 + W/(1-rho''))
            # with W the FCFS waiting factor; dT'/drho'' = (T' - xbar)/(1-rho'').
            t_j = float(res.per_server_response_times[j])
            dt += (t_j - xbar) / (1.0 - rho_s) * drho
        d_special[j] = float(weights[j]) * dt

    # Finite-difference envelopes for speeds and rbar.
    def obj(speeds_vec, rbar_val):
        return _fixed_rate_objective(
            sizes, speeds_vec, specials, rbar_val, rates, disc
        )

    d_speed = np.zeros(group.n)
    for j in range(group.n):
        if rates[j] == 0.0:
            continue
        h = _FD_STEP * max(1.0, float(speeds[j]))
        up = speeds.copy().astype(float)
        dn = up.copy()
        up[j] += h
        dn[j] -= h
        d_speed[j] = (obj(up, rbar) - obj(dn, rbar)) / (2.0 * h)

    h = _FD_STEP * max(1.0, rbar)
    d_rbar = (obj(speeds, rbar + h) - obj(speeds, rbar - h)) / (2.0 * h)

    return SensitivityReport(
        t_prime=res.mean_response_time,
        d_special=d_special,
        d_speed=d_speed,
        d_rbar=float(d_rbar),
    )
