"""Robustness of the optimal split to model misspecification.

Two failure modes a deployment will actually hit, neither analyzed by
the paper:

:func:`preload_misestimation`
    The optimizer was fed wrong special-task rates.  The split is
    computed against the *assumed* rates but the system runs under the
    *true* rates.  Reports the realized ``T'`` (analytically — the
    M/M/m model still applies, just at different utilizations), the
    ``T'`` an oracle would achieve, and the regret.  If the stale split
    saturates a server under the true load, that is reported as a
    blow-up rather than hidden.

:func:`service_law_mismatch`
    Execution requirements are not exponential.  The analytical model
    cannot price this, so the discrete-event simulator measures the
    realized mean generic response time at the M/M/m-optimal split for
    a chosen requirement distribution (see
    :mod:`repro.sim.requirements`), compared with the M/M/m prediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.exceptions import ParameterError
from ..core.response import Discipline
from ..core.server import BladeServerGroup
from ..core.solvers import dispatch
from ..sim.engine import simulate_group
from ..sim.requirements import RequirementDistribution

__all__ = [
    "PreloadMisestimationReport",
    "ServiceLawMismatchReport",
    "preload_misestimation",
    "service_law_mismatch",
]


@dataclass(frozen=True)
class PreloadMisestimationReport:
    """Effect of optimizing against wrong special-task rates."""

    #: T' realized by the stale split under the true preload
    #: (``inf`` if the stale split saturates a server).
    realized: float
    #: T' of the oracle split computed against the true preload.
    oracle: float
    #: ``realized / oracle`` (``inf`` on saturation).
    regret: float
    #: True utilizations under the stale split (may contain >= 1).
    utilizations: np.ndarray

    @property
    def saturated(self) -> bool:
        """Whether the stale split overloads at least one server."""
        return bool(np.any(self.utilizations >= 1.0))


def preload_misestimation(
    group_assumed: BladeServerGroup,
    true_special_rates: Sequence[float],
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
    method: str = "kkt",
) -> PreloadMisestimationReport:
    """Quantify the cost of a stale/wrong preload estimate.

    Parameters
    ----------
    group_assumed:
        The group as the optimizer believes it to be.
    true_special_rates:
        The actual ``lambda''_i`` the system runs under (sizes, speeds
        and ``rbar`` are assumed known exactly — they are hardware).
    total_rate, discipline, method:
        Operating point and solver.
    """
    true_rates = np.asarray(true_special_rates, dtype=float)
    if true_rates.shape != (group_assumed.n,):
        raise ParameterError(
            f"true_special_rates shape {true_rates.shape} != ({group_assumed.n},)"
        )
    stale = dispatch(
        group_assumed, total_rate, discipline, method
    )
    true_group = BladeServerGroup.from_arrays(
        group_assumed.sizes,
        group_assumed.speeds,
        true_rates,
        rbar=group_assumed.rbar,
    )
    oracle = dispatch(
        true_group, total_rate, discipline, method
    )
    utils = true_group.utilizations(stale.generic_rates)
    if np.any(utils >= 1.0):
        realized = math.inf
    else:
        realized = true_group.mean_response_time(
            stale.generic_rates, discipline
        )
    return PreloadMisestimationReport(
        realized=realized,
        oracle=oracle.mean_response_time,
        regret=realized / oracle.mean_response_time,
        utilizations=utils,
    )


@dataclass(frozen=True)
class ServiceLawMismatchReport:
    """Effect of a non-exponential requirement law on the optimal split."""

    #: SCV of the requirement distribution that actually ran.
    scv: float
    #: The M/M/m prediction the optimizer promised.
    predicted: float
    #: The simulated mean generic response time at the M/M/m split.
    simulated: float
    #: ``simulated / predicted``.
    drift: float


def service_law_mismatch(
    group: BladeServerGroup,
    total_rate: float,
    requirement: RequirementDistribution,
    discipline: Discipline | str = Discipline.FCFS,
    *,
    horizon: float = 10_000.0,
    warmup: float = 1_000.0,
    seed: int = 0,
    method: str = "kkt",
) -> ServiceLawMismatchReport:
    """Simulate the M/M/m-optimal split under a different service law.

    The expected pattern (Pollaczek–Khinchine intuition): waiting parts
    of the response scale roughly with ``(1 + SCV)/2``, so
    deterministic requirements (SCV 0) *beat* the prediction while
    hyperexponential mixes (SCV > 1) exceed it — increasingly so at
    high utilization.
    """
    res = dispatch(group, total_rate, discipline, method)
    sim = simulate_group(
        group,
        total_rate,
        res.fractions,
        discipline,
        horizon=horizon,
        warmup=warmup,
        seed=seed,
        requirement=requirement,
    )
    return ServiceLawMismatchReport(
        scv=requirement.scv,
        predicted=res.mean_response_time,
        simulated=sim.generic_response_time,
        drift=sim.generic_response_time / res.mean_response_time,
    )
