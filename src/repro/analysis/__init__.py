"""Analysis tools: saturation, validation, tables/figures, comparisons."""

from .comparison import PolicyComparison, PolicyOutcome, compare_policies
from .convergence import Phase, PhaseReport, phase_reports
from .figures import FigureSeries, build_figure
from .planning import (
    BladeAdditionOption,
    UpgradeStep,
    evaluate_blade_additions,
    greedy_upgrade_path,
)
from .robustness import (
    PreloadMisestimationReport,
    ServiceLawMismatchReport,
    preload_misestimation,
    service_law_mismatch,
)
from .saturation import SaturationReport, analyze_saturation, headroom
from .sensitivity import SensitivityReport, optimal_value_sensitivities
from .tables import PaperTable, render_table, reproduce_table
from .validation import ValidationReport, validate_model

__all__ = [
    "BladeAdditionOption",
    "FigureSeries",
    "PaperTable",
    "Phase",
    "PhaseReport",
    "PolicyComparison",
    "PolicyOutcome",
    "PreloadMisestimationReport",
    "SaturationReport",
    "SensitivityReport",
    "ServiceLawMismatchReport",
    "UpgradeStep",
    "ValidationReport",
    "analyze_saturation",
    "build_figure",
    "compare_policies",
    "evaluate_blade_additions",
    "greedy_upgrade_path",
    "headroom",
    "optimal_value_sensitivities",
    "phase_reports",
    "preload_misestimation",
    "render_table",
    "reproduce_table",
    "service_law_mismatch",
    "validate_model",
]
