"""Reproduction of the paper's Tables 1 and 2.

Each table lists, for the Examples 1/2 seven-server system at
``lambda' = 23.52``, the per-server parameters (``m_i``, ``s_i``,
``x_i``), the optimal generic rates ``lambda'_i``, the special rates
``lambda''_i``, and the resulting utilizations ``rho_i``, plus the
minimized ``T'``.  :func:`reproduce_table` computes the whole table
from scratch with a chosen solver; :func:`render_table` prints it in
the paper's column layout for eyeball comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.response import Discipline
from ..core.result import LoadDistributionResult
from ..core.server import BladeServerGroup
from ..core.solvers import dispatch
from ..workloads.paper import EXAMPLE_TOTAL_RATE
from ..workloads.groups import example_group

__all__ = ["PaperTable", "reproduce_table", "render_table"]


@dataclass(frozen=True)
class PaperTable:
    """One reproduced table (all columns of Table 1 / Table 2)."""

    table_id: str
    discipline: Discipline
    sizes: np.ndarray
    speeds: np.ndarray
    xbars: np.ndarray
    generic_rates: np.ndarray
    special_rates: np.ndarray
    utilizations: np.ndarray
    t_prime: float
    result: LoadDistributionResult


def reproduce_table(
    discipline: Discipline | str,
    method: str = "kkt",
    group: BladeServerGroup | None = None,
    total_rate: float = EXAMPLE_TOTAL_RATE,
) -> PaperTable:
    """Recompute Table 1 (``fcfs``) or Table 2 (``priority``).

    The defaults reproduce the paper exactly; pass a custom ``group``
    or ``total_rate`` to build the same table for another system.
    """
    disc = Discipline.coerce(discipline)
    if group is None:
        group = example_group()
    result = dispatch(group, total_rate, disc, method)
    return PaperTable(
        table_id="table1" if disc is Discipline.FCFS else "table2",
        discipline=disc,
        sizes=group.sizes,
        speeds=group.speeds,
        xbars=group.xbars,
        generic_rates=result.generic_rates,
        special_rates=group.special_rates,
        utilizations=result.utilizations,
        t_prime=result.mean_response_time,
        result=result,
    )


def render_table(table: PaperTable) -> str:
    """Plain-text rendering in the paper's column order."""
    lines = [
        f"{table.table_id} ({table.discipline.value}): "
        f"T' = {table.t_prime:.7f}",
        f"{'i':>3} {'m_i':>5} {'s_i':>6} {'x_i':>11} "
        f"{'lambda_i':>12} {'lambda_i2':>12} {'rho_i':>11}",
    ]
    for i in range(len(table.sizes)):
        lines.append(
            f"{i + 1:>3} {table.sizes[i]:>5d} {table.speeds[i]:>6.1f} "
            f"{table.xbars[i]:>11.7f} {table.generic_rates[i]:>12.7f} "
            f"{table.special_rates[i]:>12.7f} {table.utilizations[i]:>11.7f}"
        )
    return "\n".join(lines)
