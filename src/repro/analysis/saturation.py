"""Saturation analysis of a blade-server group.

Section 5 of the paper closes with a rule-of-thumb: *all* reduction of
the optimal ``T'`` comes from pushing the saturation point

.. math::

    \\lambda'_{max} = \\sum_i \\left(\\frac{m_i s_i}{\\bar r}
        - \\lambda''_i\\right)

further out — grow ``m_i`` or ``s_i``, shrink ``rbar`` or
``lambda''_i``.  This module quantifies that: per-server saturation
points, group headroom at a given operating point, and the sensitivity
of ``lambda'_max`` to each of the four parameter families (the
rule-of-thumb, made computable).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import ParameterError
from ..core.server import BladeServerGroup

__all__ = ["SaturationReport", "analyze_saturation", "headroom"]


@dataclass(frozen=True)
class SaturationReport:
    """Saturation structure of one group.

    Attributes
    ----------
    per_server:
        Per-server generic-load saturation points
        ``m_i/xbar_i - lambda''_i``.
    total:
        The group saturation point ``lambda'_max``.
    d_per_blade:
        Gain in ``lambda'_max`` from adding one blade to each server
        (``s_i / rbar`` each) — the "increase m" lever.
    d_per_speed_unit:
        Gain from one unit of extra speed on each server
        (``m_i / rbar``) — the "increase s" lever.
    d_per_rbar:
        Derivative of ``lambda'_max`` w.r.t. ``rbar``
        (``-sum m_i s_i / rbar^2``; negative — the "reduce rbar" lever).
    d_per_special:
        Derivative w.r.t. each ``lambda''_i`` (exactly ``-1`` per the
        model; kept as a vector for report symmetry).
    """

    per_server: np.ndarray
    total: float
    d_per_blade: np.ndarray
    d_per_speed_unit: np.ndarray
    d_per_rbar: float
    d_per_special: np.ndarray


def analyze_saturation(group: BladeServerGroup) -> SaturationReport:
    """Compute the group's saturation report."""
    per_server = group.spare_capacities
    return SaturationReport(
        per_server=per_server,
        total=float(per_server.sum()),
        d_per_blade=group.speeds / group.rbar,
        d_per_speed_unit=group.sizes / group.rbar,
        d_per_rbar=float(-(group.sizes * group.speeds).sum() / group.rbar**2),
        d_per_special=-np.ones(group.n),
    )


def headroom(group: BladeServerGroup, total_rate: float) -> float:
    """Fraction of the saturation point still unused at ``total_rate``.

    ``1 - lambda'/lambda'_max``; raises if the operating point is
    already infeasible.
    """
    if total_rate < 0.0:
        raise ParameterError(f"total_rate must be >= 0, got {total_rate}")
    cap = group.max_generic_rate
    if total_rate >= cap:
        raise ParameterError(
            f"operating point {total_rate:.6g} is at/beyond saturation {cap:.6g}"
        )
    return 1.0 - total_rate / cap
