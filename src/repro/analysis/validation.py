"""Analytic-vs-simulation validation harness.

The paper's soundness gap is that its M/M/m response-time model is
never checked against anything.  This harness closes the loop: for a
given group, load, and discipline it

1. solves for the optimal distribution analytically,
2. simulates the group at that distribution with the DES substrate,
3. reports analytic ``T'`` vs. the simulation CI and per-server
   utilization deltas.

``agrees`` uses the replication CI *widened by a relative guard band*
(default 1%) — batch/replication CIs are themselves noisy, so demanding
raw CI containment would make the check flaky at exactly the
confidence level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.response import Discipline
from ..core.result import LoadDistributionResult
from ..core.server import BladeServerGroup
from ..core.solvers import dispatch
from ..sim.runner import ReplicatedResult, run_replications

__all__ = ["ValidationReport", "validate_model"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one analytic-vs-simulation comparison."""

    analytic: LoadDistributionResult
    simulated: ReplicatedResult
    #: Relative error of the simulated mean vs. the analytic ``T'``.
    relative_error: float
    #: Absolute per-server utilization deltas (sim - analytic).
    utilization_error: np.ndarray
    #: Guard band used by :attr:`agrees`.
    guard_band: float

    @property
    def agrees(self) -> bool:
        """Whether the analytic ``T'`` lies inside the (guarded) sim CI."""
        ci = self.simulated.generic_response_time
        slack = self.guard_band * abs(self.analytic.mean_response_time)
        return (
            ci.low - slack
            <= self.analytic.mean_response_time
            <= ci.high + slack
        )

    def render(self) -> str:
        """One-paragraph text summary."""
        ci = self.simulated.generic_response_time
        return (
            f"analytic T' = {self.analytic.mean_response_time:.6f}; "
            f"simulated T' = {ci} over {self.simulated.k} replications; "
            f"relative error {self.relative_error:.3%}; "
            f"max |util delta| = {float(np.max(np.abs(self.utilization_error))):.4f}; "
            f"{'AGREES' if self.agrees else 'DISAGREES'}"
        )


def validate_model(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
    *,
    method: str = "kkt",
    replications: int = 5,
    horizon: float = 20_000.0,
    warmup: float = 2_000.0,
    seed: int = 0,
    guard_band: float = 0.01,
) -> ValidationReport:
    """Run the full analytic-vs-simulation comparison.

    Parameters mirror the solver and the replication runner; see module
    docstring for the semantics of ``guard_band``.
    """
    disc = Discipline.coerce(discipline)
    analytic = dispatch(group, total_rate, disc, method)
    simulated = run_replications(
        group,
        total_rate,
        analytic.fractions,
        disc,
        replications=replications,
        horizon=horizon,
        warmup=warmup,
        seed=seed,
    )
    sim_mean = simulated.generic_response_time.mean
    rel = abs(sim_mean - analytic.mean_response_time) / analytic.mean_response_time
    return ValidationReport(
        analytic=analytic,
        simulated=simulated,
        relative_error=rel,
        utilization_error=simulated.utilizations - analytic.utilizations,
        guard_band=guard_band,
    )
