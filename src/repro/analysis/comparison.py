"""Policy comparison: how much does the optimal split actually buy?

The paper never quantifies the gap between its optimum and the
heuristics an operator would otherwise use.  :func:`compare_policies`
evaluates a set of policies on one instance and reports each policy's
``T'`` and its degradation relative to the optimum; policies that are
infeasible at the operating point (e.g. equal-split saturating the
smallest server at high load) are reported as such rather than
dropped — *where* heuristics break is part of the answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.exceptions import InfeasibleError
from ..core.response import Discipline
from ..core.result import LoadDistributionResult
from ..core.server import BladeServerGroup
from ..dispatch.registry import available_policies, get_policy

__all__ = ["PolicyComparison", "PolicyOutcome", "compare_policies"]


@dataclass(frozen=True)
class PolicyOutcome:
    """One policy's result on one instance."""

    policy: str
    feasible: bool
    result: LoadDistributionResult | None
    #: ``T'_policy / T'_optimal`` (>= 1); ``inf`` when infeasible.
    degradation: float

    def render(self) -> str:
        if not self.feasible:
            return f"{self.policy:>22}: infeasible at this load"
        return (
            f"{self.policy:>22}: T' = {self.result.mean_response_time:.6f} "
            f"({self.degradation:.3f}x optimal)"
        )


@dataclass(frozen=True)
class PolicyComparison:
    """All policies evaluated on one (group, load, discipline) instance."""

    total_rate: float
    discipline: Discipline
    outcomes: tuple[PolicyOutcome, ...]

    @property
    def optimal(self) -> PolicyOutcome:
        """The outcome of the optimal policy."""
        for o in self.outcomes:
            if o.policy == "optimal":
                return o
        raise LookupError("comparison did not include the optimal policy")

    def render(self) -> str:
        head = (
            f"lambda' = {self.total_rate:.4f}, "
            f"discipline = {self.discipline.value}"
        )
        return "\n".join([head] + [o.render() for o in self.outcomes])


def compare_policies(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
    policies: tuple[str, ...] | None = None,
) -> PolicyComparison:
    """Evaluate the named policies (default: all registered) on one instance.

    The optimal policy is always included (and prepended if missing)
    because degradations are computed against it.
    """
    disc = Discipline.coerce(discipline)
    names = list(policies) if policies is not None else list(available_policies())
    if "optimal" not in names:
        names.insert(0, "optimal")

    results: dict[str, LoadDistributionResult | None] = {}
    for name in names:
        policy = get_policy(name)
        try:
            results[name] = policy.distribute(group, total_rate, disc)
        except InfeasibleError:
            results[name] = None
    opt = results["optimal"]
    if opt is None:
        raise InfeasibleError(
            f"instance infeasible even for the optimal policy "
            f"(lambda'={total_rate}, capacity={group.max_generic_rate})",
            total_rate=total_rate,
            capacity=group.max_generic_rate,
        )
    outcomes = []
    for name in names:
        res = results[name]
        outcomes.append(
            PolicyOutcome(
                policy=name,
                feasible=res is not None,
                result=res,
                degradation=(
                    res.mean_response_time / opt.mean_response_time
                    if res is not None
                    else float("inf")
                ),
            )
        )
    return PolicyComparison(
        total_rate=total_rate, discipline=disc, outcomes=tuple(outcomes)
    )
