"""Discrete capacity planning: where do the next blades go?

The envelope sensitivities (:mod:`repro.analysis.sensitivity`) price
*infinitesimal* parameter changes; hardware arrives in whole blades.
This module evaluates the discrete what-ifs exactly — re-optimizing the
load distribution for each candidate upgrade — and greedily builds an
upgrade path:

:func:`evaluate_blade_additions`
    The optimal ``T'`` after adding one blade to each server in turn
    (with or without the paper's convention that a new blade brings its
    proportional share of dedicated work).

:func:`greedy_upgrade_path`
    Repeatedly adds the single most valuable blade, ``k`` times.
    Greedy is not always globally optimal for k > 1, but each step is
    an exact evaluation, and the path exposes the diminishing-returns
    structure operators budget against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import ParameterError
from ..core.response import Discipline
from ..core.server import BladeServerGroup
from ..core.solvers import dispatch

__all__ = [
    "BladeAdditionOption",
    "UpgradeStep",
    "evaluate_blade_additions",
    "greedy_upgrade_path",
]


@dataclass(frozen=True)
class BladeAdditionOption:
    """Outcome of adding one blade to one server."""

    #: Index of the upgraded server.
    server_index: int
    #: Optimal T' after the upgrade.
    t_prime: float
    #: Improvement over the baseline optimal T' (positive = better).
    gain: float
    #: The upgraded group's saturation point.
    new_capacity: float


@dataclass(frozen=True)
class UpgradeStep:
    """One step of the greedy upgrade path."""

    #: Which server received the blade at this step.
    server_index: int
    #: Optimal T' after this step.
    t_prime: float
    #: Size vector after this step.
    sizes: tuple[int, ...]


def _upgraded_group(
    group: BladeServerGroup, j: int, preload_follows: bool
) -> BladeServerGroup:
    sizes = group.sizes.copy()
    sizes[j] += 1
    specials = group.special_rates.copy()
    if preload_follows:
        # The paper's convention lambda''_i = y m_i / xbar_i: a new blade
        # arrives carrying its proportional share of dedicated work.
        specials[j] *= sizes[j] / (sizes[j] - 1)
    return BladeServerGroup.from_arrays(
        sizes, group.speeds, specials, rbar=group.rbar
    )


def evaluate_blade_additions(
    group: BladeServerGroup,
    total_rate: float,
    discipline: Discipline | str = Discipline.FCFS,
    preload_follows: bool = False,
    method: str = "kkt",
) -> list[BladeAdditionOption]:
    """Exact what-if for one extra blade on each server.

    Parameters
    ----------
    preload_follows:
        If true, the new blade also brings proportional dedicated work
        (the paper's preload convention); if false (default), the blade
        is pure new capacity.

    Returns
    -------
    list[BladeAdditionOption]
        One option per server, ordered by decreasing gain.
    """
    disc = Discipline.coerce(discipline)
    base = dispatch(group, total_rate, disc, method)
    options = []
    for j in range(group.n):
        upgraded = _upgraded_group(group, j, preload_follows)
        res = dispatch(upgraded, total_rate, disc, method)
        options.append(
            BladeAdditionOption(
                server_index=j,
                t_prime=res.mean_response_time,
                gain=base.mean_response_time - res.mean_response_time,
                new_capacity=upgraded.max_generic_rate,
            )
        )
    options.sort(key=lambda o: -o.gain)
    return options


def greedy_upgrade_path(
    group: BladeServerGroup,
    total_rate: float,
    blades: int,
    discipline: Discipline | str = Discipline.FCFS,
    preload_follows: bool = False,
    method: str = "kkt",
) -> list[UpgradeStep]:
    """Greedily place ``blades`` extra blades, one at a time.

    Each step evaluates all ``n`` candidate placements exactly and
    commits the best one.  Returns the committed steps in order.
    """
    if blades < 1:
        raise ParameterError(f"blades must be >= 1, got {blades}")
    disc = Discipline.coerce(discipline)
    current = group
    steps: list[UpgradeStep] = []
    for _ in range(blades):
        options = evaluate_blade_additions(
            current, total_rate, disc, preload_follows, method
        )
        best = options[0]
        current = _upgraded_group(current, best.server_index, preload_follows)
        steps.append(
            UpgradeStep(
                server_index=best.server_index,
                t_prime=best.t_prime,
                sizes=tuple(int(m) for m in current.sizes),
            )
        )
    return steps
