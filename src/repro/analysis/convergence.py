"""Phase-segmented convergence analysis for closed-loop runtime runs.

A closed-loop run (see :func:`repro.runtime.loop.run_closed_loop`)
moves through *regimes*: a stationary stretch, a post-step stretch at a
new rate, a degraded stretch after a failure.  Each regime has its own
analytic optimum ``T'`` — the value the paper's optimizer would pick
knowing that regime's true rate and topology.  This module cuts the
simulation's task log at the regime boundaries (skipping a settle
interval after each boundary, while the estimator catches up and the
queues relax to the new operating point) and compares the achieved mean
generic response time of each phase against its target.

This is the runtime analogue of :mod:`repro.analysis.validation`: where
validation asks "do the formulas match reality at a fixed operating
point?", convergence asks "does the *controller find* the optimal
operating point, repeatedly, as reality shifts under it?".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.exceptions import ParameterError
from ..sim.stats import ConfidenceInterval, RunningStats
from ..sim.task import SimTask, TaskClass

__all__ = ["Phase", "PhaseReport", "phase_reports"]


@dataclass(frozen=True)
class Phase:
    """One regime of a closed-loop run.

    Attributes
    ----------
    label:
        Human-readable regime name (``"stationary"``, ``"post-step"``…).
    start, end:
        Simulation-time boundaries of the regime.
    analytic_t_prime:
        The optimum ``T'`` for the regime's true rate and topology
        (``nan`` when no analytic target exists, e.g. a shedding
        regime, where only stability is asserted).
    """

    label: str
    start: float
    end: float
    analytic_t_prime: float = float("nan")

    def __post_init__(self) -> None:
        if not (self.start < self.end):
            raise ParameterError(
                f"phase {self.label!r}: need start < end, got "
                f"{self.start}, {self.end}"
            )


@dataclass(frozen=True)
class PhaseReport:
    """Achieved vs. analytic response time over one phase.

    Tasks are attributed to a phase by *arrival* time, so a task whose
    sojourn straddles a boundary counts toward the regime that admitted
    it.
    """

    phase: Phase
    #: Mean generic response time achieved over the phase window.
    achieved: float
    #: Completed generic tasks measured.
    count: int
    #: ``|achieved - analytic| / analytic`` (``nan`` without a target).
    relative_error: float
    #: 95% batch-free Student-t interval on the achieved mean.
    interval: ConfidenceInterval

    @property
    def converged(self) -> bool:
        """Whether the analytic target lies inside the achieved CI."""
        if math.isnan(self.phase.analytic_t_prime):
            return False
        return self.interval.contains(self.phase.analytic_t_prime)

    def render(self) -> str:
        """One status line for reports and example scripts."""
        target = (
            f"target T' = {self.phase.analytic_t_prime:.5f}, "
            if not math.isnan(self.phase.analytic_t_prime)
            else ""
        )
        return (
            f"[{self.phase.label}] t in [{self.phase.start:g}, "
            f"{self.phase.end:g}): achieved T' = {self.achieved:.5f} "
            f"({target}n = {self.count})"
        )


def phase_reports(
    task_log: Sequence[SimTask],
    phases: Sequence[Phase],
    settle: float = 0.0,
    level: float = 0.95,
) -> list[PhaseReport]:
    """Cut a task log at phase boundaries and score each phase.

    Parameters
    ----------
    task_log:
        Completed tasks from a run with ``collect_tasks=True`` (only
        generic tasks are scored; special tasks are ignored).
    phases:
        The regime windows, typically built from the run's
        :class:`~repro.workloads.traces.RateTrace` segments and failure
        schedule.
    settle:
        Transient skipped at the start of every phase: tasks arriving
        within ``settle`` of the boundary are excluded, giving the
        estimator time to track the new rate and the queues time to
        relax.  Phases shorter than ``settle`` raise.
    level:
        Confidence level of the per-phase intervals.

    Notes
    -----
    The per-phase interval treats task response times as i.i.d., which
    they are not (successive sojourns are autocorrelated) — so it is
    narrower than a batch-means interval on the same data.  Callers
    asserting convergence should combine it with a guard band, exactly
    as :mod:`repro.analysis.validation` does.
    """
    if settle < 0.0:
        raise ParameterError(f"settle must be >= 0, got {settle}")
    for phase in phases:
        if phase.end - phase.start <= settle:
            raise ParameterError(
                f"phase {phase.label!r} is shorter than the settle "
                f"interval ({settle})"
            )
    reports: list[PhaseReport] = []
    for phase in phases:
        lo = phase.start + settle
        stats = RunningStats()
        for task in task_log:
            if task.task_class is not TaskClass.GENERIC:
                continue
            if lo <= task.arrival_time < phase.end:
                stats.add(task.response_time)
        if stats.count == 0:
            raise ParameterError(
                f"phase {phase.label!r} contains no completed generic "
                f"tasks; was the run collected with collect_tasks=True "
                f"and a horizon past {phase.end}?"
            )
        achieved = stats.mean
        interval = _t_interval(stats, level)
        rel = (
            abs(achieved - phase.analytic_t_prime) / phase.analytic_t_prime
            if not math.isnan(phase.analytic_t_prime)
            else float("nan")
        )
        reports.append(
            PhaseReport(
                phase=phase,
                achieved=achieved,
                count=stats.count,
                relative_error=rel,
                interval=interval,
            )
        )
    return reports


def _t_interval(stats: RunningStats, level: float) -> ConfidenceInterval:
    from scipy import stats as _scipy_stats

    if stats.count < 2:
        return ConfidenceInterval(stats.mean, float("inf"), level)
    t_crit = float(_scipy_stats.t.ppf(0.5 + level / 2.0, df=stats.count - 1))
    half = t_crit * stats.stddev / math.sqrt(stats.count)
    return ConfidenceInterval(stats.mean, half, level)
